//! `trace-diff`: lane-by-lane comparison of two traces of the same
//! preset, attributing their makespan delta to concrete tasks and flows.
//!
//! Both traces are grouped by [`Lane`] — the totally ordered sub-streams
//! the lifecycle invariants already run over — and each shared lane's
//! `(start, end)` span is compared. Lanes are ranked by how far their
//! *end* moved, because under work-conserving scheduling the makespan
//! delta is carried by the chain of latest-finishing lanes: the top of
//! the ranking names the tasks/flows that the slower run finished late,
//! and the final lane of each trace pins the end of that longest chain.
//!
//! Everything here is deterministic: ties rank by `Lane`'s total order,
//! and [`render`] emits a fixed text layout that golden tests pin.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simkit::time::SimTime;

use crate::event::{Lane, SimEvent};
use crate::jsonl::parse_line;

/// One lane's observed span in a single trace (timestamps in micros).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneSpan {
    /// Timestamp of the lane's first event.
    pub start: u64,
    /// Timestamp of the lane's last event.
    pub end: u64,
    /// Number of events observed on the lane.
    pub events: u64,
}

/// One shared lane's spans in both traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneDelta {
    /// The lane identity common to both traces.
    pub lane: Lane,
    /// Span in trace A.
    pub a: LaneSpan,
    /// Span in trace B.
    pub b: LaneSpan,
}

impl LaneDelta {
    /// Signed end shift `B - A` in micros: positive means the lane
    /// finished later in trace B.
    pub fn end_shift_micros(&self) -> i64 {
        self.b.end as i64 - self.a.end as i64
    }

    /// Signed duration change `B - A` in micros.
    pub fn duration_shift_micros(&self) -> i64 {
        (self.b.end - self.b.start) as i64 - (self.a.end - self.a.start) as i64
    }
}

/// The comparison of two traces; see [`diff_streams`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDiff {
    /// Last event timestamp of trace A, in micros.
    pub makespan_a: u64,
    /// Last event timestamp of trace B, in micros.
    pub makespan_b: u64,
    /// Lane of the final event of trace A — the end of its critical
    /// chain.
    pub final_lane_a: Option<Lane>,
    /// Lane of the final event of trace B.
    pub final_lane_b: Option<Lane>,
    /// Number of lanes present in both traces.
    pub shared_lanes: usize,
    /// Shared lanes ranked by absolute end shift (ties by lane order),
    /// truncated to the requested count.
    pub rows: Vec<LaneDelta>,
    /// Lanes only trace A has, with their spans.
    pub only_a: Vec<(Lane, LaneSpan)>,
    /// Lanes only trace B has, with their spans.
    pub only_b: Vec<(Lane, LaneSpan)>,
}

/// Groups a timestamp-ordered stream into per-lane spans.
fn lane_spans(events: &[(SimTime, SimEvent)]) -> BTreeMap<Lane, LaneSpan> {
    let mut spans: BTreeMap<Lane, LaneSpan> = BTreeMap::new();
    for (at, event) in events {
        let t = at.as_micros();
        spans
            .entry(event.lane())
            .and_modify(|s| {
                s.end = s.end.max(t);
                s.events += 1;
            })
            .or_insert(LaneSpan {
                start: t,
                end: t,
                events: 1,
            });
    }
    spans
}

/// Diffs two recorded streams, keeping the `top` largest end shifts.
pub fn diff_streams(a: &[(SimTime, SimEvent)], b: &[(SimTime, SimEvent)], top: usize) -> TraceDiff {
    let spans_a = lane_spans(a);
    let spans_b = lane_spans(b);
    let mut rows = Vec::new();
    let mut only_a = Vec::new();
    for (&lane, &sa) in &spans_a {
        match spans_b.get(&lane) {
            Some(&sb) => rows.push(LaneDelta { lane, a: sa, b: sb }),
            None => only_a.push((lane, sa)),
        }
    }
    let only_b: Vec<(Lane, LaneSpan)> = spans_b
        .iter()
        .filter(|(lane, _)| !spans_a.contains_key(lane))
        .map(|(&lane, &span)| (lane, span))
        .collect();
    let shared_lanes = rows.len();
    rows.sort_by_key(|d| {
        (
            std::cmp::Reverse(d.end_shift_micros().unsigned_abs()),
            d.lane,
        )
    });
    rows.truncate(top);
    TraceDiff {
        makespan_a: a.last().map_or(0, |(at, _)| at.as_micros()),
        makespan_b: b.last().map_or(0, |(at, _)| at.as_micros()),
        final_lane_a: a.last().map(|(_, e)| e.lane()),
        final_lane_b: b.last().map(|(_, e)| e.lane()),
        shared_lanes,
        rows,
        only_a,
        only_b,
    }
}

/// Parses two JSONL trace documents and diffs them.
///
/// # Errors
///
/// The first malformed line of either document, with its line number.
pub fn diff_jsonl(a: &str, b: &str, top: usize) -> Result<TraceDiff, String> {
    let parse = |doc: &str, name: &str| -> Result<Vec<(SimTime, SimEvent)>, String> {
        doc.lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .map(|(i, line)| parse_line(line).map_err(|e| format!("{name} line {}: {e}", i + 1)))
            .collect()
    };
    Ok(diff_streams(&parse(a, "A")?, &parse(b, "B")?, top))
}

fn secs(micros: u64) -> f64 {
    micros as f64 / 1e6
}

fn signed_secs(micros: i64) -> String {
    format!("{:+.2}s", micros as f64 / 1e6)
}

/// Renders the diff as deterministic plain text.
pub fn render(diff: &TraceDiff) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "makespan: A {:.2}s  B {:.2}s  ({})",
        secs(diff.makespan_a),
        secs(diff.makespan_b),
        signed_secs(diff.makespan_b as i64 - diff.makespan_a as i64),
    );
    let lane_name = |lane: Option<Lane>| lane.map_or_else(|| "-".to_string(), |l| l.to_string());
    let _ = writeln!(
        s,
        "final lane: A {}  B {}",
        lane_name(diff.final_lane_a),
        lane_name(diff.final_lane_b),
    );
    let _ = writeln!(
        s,
        "lanes: {} shared, {} only in A, {} only in B",
        diff.shared_lanes,
        diff.only_a.len(),
        diff.only_b.len(),
    );
    if !diff.rows.is_empty() {
        let _ = writeln!(s, "top end shifts (B - A):");
        for d in &diff.rows {
            let _ = writeln!(
                s,
                "  {:<24} end {:>10}  dur {:>10}  (A {:.2}..{:.2}, B {:.2}..{:.2})",
                d.lane.to_string(),
                signed_secs(d.end_shift_micros()),
                signed_secs(d.duration_shift_micros()),
                secs(d.a.start),
                secs(d.a.end),
                secs(d.b.start),
                secs(d.b.end),
            );
        }
    }
    // Exclusive-lane lists can be huge (every extra flow of the slower
    // schedule); print a bounded prefix, the struct keeps the rest.
    const MAX_EXCLUSIVE: usize = 12;
    for (name, lanes) in [("A", &diff.only_a), ("B", &diff.only_b)] {
        if lanes.is_empty() {
            continue;
        }
        let _ = writeln!(s, "only in {name}:");
        for (lane, span) in lanes.iter().take(MAX_EXCLUSIVE) {
            let _ = writeln!(
                s,
                "  {:<24} {:.2}..{:.2} ({} events)",
                lane.to_string(),
                secs(span.start),
                secs(span.end),
                span.events,
            );
        }
        if lanes.len() > MAX_EXCLUSIVE {
            let _ = writeln!(s, "  ... and {} more", lanes.len() - MAX_EXCLUSIVE);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn job_pair(job: u32, start: u64, end: u64) -> Vec<(SimTime, SimEvent)> {
        vec![
            (at(start), SimEvent::JobStarted { job }),
            (at(end), SimEvent::JobFinished { job }),
        ]
    }

    #[test]
    fn ranks_lanes_by_end_shift_and_tracks_exclusives() {
        let mut a = job_pair(1, 0, 100);
        a.extend(job_pair(2, 0, 50));
        a.push((at(120), SimEvent::NodeFailed { node: 9 }));
        let mut b = job_pair(1, 0, 160); // finished 60s later
        b.extend(job_pair(2, 10, 55)); // finished 5s later
        b.push((at(165), SimEvent::RepairFinished { task: 3 }));
        let diff = diff_streams(&a, &b, 10);
        assert_eq!(diff.makespan_a, 120_000_000);
        assert_eq!(diff.makespan_b, 165_000_000);
        assert_eq!(diff.final_lane_a, Some(Lane::Node(9)));
        assert_eq!(diff.final_lane_b, Some(Lane::Repair(3)));
        assert_eq!(diff.shared_lanes, 2);
        assert_eq!(diff.rows.len(), 2);
        assert_eq!(diff.rows[0].lane, Lane::Job(1));
        assert_eq!(diff.rows[0].end_shift_micros(), 60_000_000);
        assert_eq!(diff.rows[1].lane, Lane::Job(2));
        assert_eq!(diff.rows[1].duration_shift_micros(), -5_000_000);
        assert_eq!(
            diff.only_a,
            vec![(
                Lane::Node(9),
                LaneSpan {
                    start: 120_000_000,
                    end: 120_000_000,
                    events: 1
                }
            )]
        );
        assert_eq!(diff.only_b.len(), 1);
    }

    #[test]
    fn truncates_to_top_and_breaks_ties_by_lane_order() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for job in 0..5 {
            a.extend(job_pair(job, 0, 10));
            b.extend(job_pair(job, 0, 20)); // all shifted equally
        }
        let diff = diff_streams(&a, &b, 3);
        assert_eq!(diff.shared_lanes, 5);
        let lanes: Vec<Lane> = diff.rows.iter().map(|d| d.lane).collect();
        assert_eq!(lanes, vec![Lane::Job(0), Lane::Job(1), Lane::Job(2)]);
    }

    #[test]
    fn jsonl_round_trip_and_render_are_stable() {
        let a = "{\"t\":0,\"ev\":\"job_started\",\"job\":1}\n\
                 {\"t\":5000000,\"ev\":\"job_finished\",\"job\":1}\n";
        let b = "{\"t\":0,\"ev\":\"job_started\",\"job\":1}\n\
                 {\"t\":8000000,\"ev\":\"job_finished\",\"job\":1}\n\
                 {\"t\":9000000,\"ev\":\"node_failed\",\"node\":2}\n";
        let diff = diff_jsonl(a, b, 10).unwrap();
        let text = render(&diff);
        assert_eq!(
            text,
            "makespan: A 5.00s  B 9.00s  (+4.00s)\n\
             final lane: A job 1  B node 2\n\
             lanes: 1 shared, 0 only in A, 1 only in B\n\
             top end shifts (B - A):\n\
             \x20 job 1                    end     +3.00s  dur     +3.00s  (A 0.00..5.00, B 0.00..8.00)\n\
             only in B:\n\
             \x20 node 2                   9.00..9.00 (1 events)\n"
        );
        assert!(diff_jsonl("not json\n", b, 10)
            .unwrap_err()
            .contains("A line 1"));
    }
}
