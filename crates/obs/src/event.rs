//! The structured event vocabulary of the simulator.
//!
//! Events use plain integers for every identifier (job, task, node, flow,
//! link) so this crate sits below the domain crates in the dependency
//! graph: `mapreduce`, `netsim` and `repair` translate their typed ids
//! into these records, never the other way around.

/// Locality class of a map attempt, mirroring
/// `mapreduce::job::MapLocality` without depending on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Locality {
    /// Input block stored on the executing node.
    NodeLocal,
    /// Input block stored in the executing node's rack.
    RackLocal,
    /// Input block fetched from another rack.
    Remote,
    /// Input block lost; reconstructed via a degraded read.
    Degraded,
}

impl Locality {
    /// Stable snake_case name used in serialized traces.
    pub fn name(self) -> &'static str {
        match self {
            Locality::NodeLocal => "node_local",
            Locality::RackLocal => "rack_local",
            Locality::Remote => "remote",
            Locality::Degraded => "degraded",
        }
    }
}

/// One phase of a degraded read, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradedPhase {
    /// Downloading the `k` surviving blocks of the stripe.
    FetchK,
    /// Erasure-decoding the lost block from the `k` fetched blocks.
    Decode,
    /// Running the map function over the reconstructed block.
    Process,
}

impl DegradedPhase {
    /// Stable snake_case name used in serialized traces.
    pub fn name(self) -> &'static str {
        match self {
            DegradedPhase::FetchK => "fetch_k",
            DegradedPhase::Decode => "decode",
            DegradedPhase::Process => "process",
        }
    }
}

/// The links a flow traverses: at most two endpoint links and two rack
/// links, mirroring `netsim`'s inline `Path` without depending on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct LinkSet {
    /// Number of meaningful entries in `links`.
    pub len: u8,
    /// Link indices, valid in `[0, len)`.
    pub links: [u32; 4],
}

impl LinkSet {
    /// The traversed link indices as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.links[..self.len as usize]
    }

    /// Builds a set from a slice of at most four link indices.
    ///
    /// # Panics
    ///
    /// Panics if `links` has more than four entries.
    pub fn from_slice(links: &[u32]) -> LinkSet {
        assert!(links.len() <= 4, "flows traverse at most 4 links");
        let mut set = LinkSet {
            len: links.len() as u8,
            links: [0; 4],
        };
        set.links[..links.len()].copy_from_slice(links);
        set
    }
}

/// The lane an event belongs to: a totally ordered sub-stream of the
/// trace. Within one lane, timestamps are monotone non-decreasing (a
/// property the proptest suite enforces).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// Job lifecycle events of one job.
    Job(u32),
    /// Attempt lifecycle of one map attempt `(job, task, speculative)`.
    Map(u32, u32, bool),
    /// Lifecycle of one reduce task `(job, index)`.
    Reduce(u32, u32),
    /// Lifecycle of one network flow.
    Flow(u64),
    /// Failure/recovery of one node.
    Node(u32),
    /// One repair task.
    Repair(u32),
}

impl std::fmt::Display for Lane {
    /// Compact human-readable label used by `trace-diff` output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Lane::Job(job) => write!(f, "job {job}"),
            Lane::Map(job, task, false) => write!(f, "map {job}/{task}"),
            Lane::Map(job, task, true) => write!(f, "map {job}/{task} (spec)"),
            Lane::Reduce(job, index) => write!(f, "reduce {job}/{index}"),
            Lane::Flow(flow) => write!(f, "flow {flow}"),
            Lane::Node(node) => write!(f, "node {node}"),
            Lane::Repair(task) => write!(f, "repair {task}"),
        }
    }
}

/// A structured simulation event. Paired with a
/// [`simkit::SimTime`](simkit::time::SimTime) timestamp when recorded
/// through an [`EventSink`](crate::sink::EventSink).
#[derive(Clone, Debug, PartialEq)]
pub enum SimEvent {
    /// A job entered the queue.
    JobSubmitted {
        /// Job id.
        job: u32,
        /// Number of map tasks.
        maps: u32,
        /// Number of reduce tasks.
        reduces: u32,
    },
    /// A job launched its first map task.
    JobStarted {
        /// Job id.
        job: u32,
    },
    /// A job's last task completed.
    JobFinished {
        /// Job id.
        job: u32,
    },
    /// A map task became schedulable (at job arrival).
    TaskQueued {
        /// Owning job.
        job: u32,
        /// Map task index within the job.
        task: u32,
        /// True if the input block is lost and the task will run degraded.
        degraded: bool,
    },
    /// A map attempt was assigned a slot.
    MapLaunched {
        /// Owning job.
        job: u32,
        /// Map task index within the job.
        task: u32,
        /// Executing node.
        node: u32,
        /// Locality class at launch.
        locality: Locality,
        /// True for a speculative (backup) attempt.
        speculative: bool,
    },
    /// A map task completed; carries the *winning* attempt's view.
    MapDone {
        /// Owning job.
        job: u32,
        /// Map task index within the job.
        task: u32,
        /// Node of the winning attempt.
        node: u32,
        /// Locality class of the winning attempt.
        locality: Locality,
        /// True if the winner was the speculative attempt.
        speculative: bool,
    },
    /// A losing attempt was cancelled after the other attempt won.
    MapCancelled {
        /// Owning job.
        job: u32,
        /// Map task index within the job.
        task: u32,
        /// Node of the cancelled attempt.
        node: u32,
        /// True if the cancelled attempt was the speculative one.
        speculative: bool,
    },
    /// A degraded read was planned; counts classify the `k` sources by
    /// distance from the reader.
    DegradedPlan {
        /// Owning job.
        job: u32,
        /// Map task index within the job.
        task: u32,
        /// Reading (executing) node.
        node: u32,
        /// Sources already stored on the reader (no transfer).
        local: u32,
        /// Sources in the reader's rack.
        same_rack: u32,
        /// Sources in other racks.
        cross_rack: u32,
    },
    /// A redundant degraded read was issued: the attempt requested
    /// `extra` survivor fetches beyond the count it needs to decode
    /// (MDS-Queue style), and will cancel the stragglers on quorum.
    RedundantFetchIssued {
        /// Owning job.
        job: u32,
        /// Map task index within the job.
        task: u32,
        /// Reading (executing) node.
        node: u32,
        /// True if the attempt is speculative.
        speculative: bool,
        /// Redundant fetches actually issued beyond the needed count.
        extra: u32,
    },
    /// An in-flight redundant fetch was cancelled — either because the
    /// decode quorum completed without it, or because its source node
    /// failed while enough other sources survived.
    FetchCancelled {
        /// Owning job.
        job: u32,
        /// Map task index within the job.
        task: u32,
        /// Reading (executing) node.
        node: u32,
        /// True if the attempt is speculative.
        speculative: bool,
        /// The cancelled flow.
        flow: u64,
    },
    /// A degraded-read phase began on the attempt's lane.
    PhaseBegin {
        /// Owning job.
        job: u32,
        /// Map task index within the job.
        task: u32,
        /// Executing node.
        node: u32,
        /// True if the attempt is speculative.
        speculative: bool,
        /// The phase starting.
        phase: DegradedPhase,
    },
    /// A degraded-read phase ended on the attempt's lane.
    PhaseEnd {
        /// Owning job.
        job: u32,
        /// Map task index within the job.
        task: u32,
        /// Executing node.
        node: u32,
        /// True if the attempt is speculative.
        speculative: bool,
        /// The phase ending.
        phase: DegradedPhase,
    },
    /// A reduce task was assigned a slot.
    ReduceLaunched {
        /// Owning job.
        job: u32,
        /// Reduce partition index.
        index: u32,
        /// Executing node.
        node: u32,
    },
    /// A reduce task received its last shuffle byte.
    ReduceShuffled {
        /// Owning job.
        job: u32,
        /// Reduce partition index.
        index: u32,
        /// Executing node.
        node: u32,
    },
    /// A reduce task finished.
    ReduceDone {
        /// Owning job.
        job: u32,
        /// Reduce partition index.
        index: u32,
        /// Executing node.
        node: u32,
    },
    /// A network flow was registered.
    FlowStarted {
        /// Flow id.
        flow: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Payload size.
        bytes: u64,
        /// Links the flow traverses (empty for loopback).
        links: LinkSet,
    },
    /// The max-min fair share reallocation changed a flow's rate.
    FlowRate {
        /// Flow id.
        flow: u64,
        /// New rate in bits per second.
        rate_bps: f64,
    },
    /// A flow completed or was cancelled.
    FlowFinished {
        /// Flow id.
        flow: u64,
        /// True if torn down before delivering all bytes.
        cancelled: bool,
    },
    /// A node failed — at t=0 under a static failure scenario, or
    /// mid-run when a failure timeline fires.
    NodeFailed {
        /// The failed node.
        node: u32,
    },
    /// A node's data was fully restored by repair.
    NodeRecovered {
        /// The recovered node.
        node: u32,
    },
    /// A repair task (reconstruction of one lost block) started.
    RepairStarted {
        /// Repair task index within the plan.
        task: u32,
        /// Stripe being repaired.
        stripe: u32,
        /// Position of the lost block within the stripe.
        pos: u32,
        /// Node receiving the reconstructed block.
        replacement: u32,
    },
    /// A repair task delivered its reconstructed block.
    RepairFinished {
        /// Repair task index within the plan.
        task: u32,
    },
}

impl SimEvent {
    /// Stable snake_case event kind, the `"ev"` field of JSONL traces.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::JobSubmitted { .. } => "job_submitted",
            SimEvent::JobStarted { .. } => "job_started",
            SimEvent::JobFinished { .. } => "job_finished",
            SimEvent::TaskQueued { .. } => "task_queued",
            SimEvent::MapLaunched { .. } => "map_launched",
            SimEvent::MapDone { .. } => "map_done",
            SimEvent::MapCancelled { .. } => "map_cancelled",
            SimEvent::DegradedPlan { .. } => "degraded_plan",
            SimEvent::RedundantFetchIssued { .. } => "redundant_fetch_issued",
            SimEvent::FetchCancelled { .. } => "fetch_cancelled",
            SimEvent::PhaseBegin { .. } => "phase_begin",
            SimEvent::PhaseEnd { .. } => "phase_end",
            SimEvent::ReduceLaunched { .. } => "reduce_launched",
            SimEvent::ReduceShuffled { .. } => "reduce_shuffled",
            SimEvent::ReduceDone { .. } => "reduce_done",
            SimEvent::FlowStarted { .. } => "flow_started",
            SimEvent::FlowRate { .. } => "flow_rate",
            SimEvent::FlowFinished { .. } => "flow_finished",
            SimEvent::NodeFailed { .. } => "node_failed",
            SimEvent::NodeRecovered { .. } => "node_recovered",
            SimEvent::RepairStarted { .. } => "repair_started",
            SimEvent::RepairFinished { .. } => "repair_finished",
        }
    }

    /// The lane this event belongs to.
    pub fn lane(&self) -> Lane {
        match *self {
            SimEvent::JobSubmitted { job, .. }
            | SimEvent::JobStarted { job }
            | SimEvent::JobFinished { job } => Lane::Job(job),
            // Queued/done/plan events sit on the original attempt's lane;
            // a speculative winner additionally closes its own lane via
            // the cancel of the loser, checked by the invariant tests.
            SimEvent::TaskQueued { job, task, .. } => Lane::Map(job, task, false),
            SimEvent::MapLaunched {
                job,
                task,
                speculative,
                ..
            }
            | SimEvent::MapDone {
                job,
                task,
                speculative,
                ..
            }
            | SimEvent::MapCancelled {
                job,
                task,
                speculative,
                ..
            }
            | SimEvent::RedundantFetchIssued {
                job,
                task,
                speculative,
                ..
            }
            | SimEvent::FetchCancelled {
                job,
                task,
                speculative,
                ..
            }
            | SimEvent::PhaseBegin {
                job,
                task,
                speculative,
                ..
            }
            | SimEvent::PhaseEnd {
                job,
                task,
                speculative,
                ..
            } => Lane::Map(job, task, speculative),
            SimEvent::DegradedPlan { job, task, .. } => Lane::Map(job, task, false),
            SimEvent::ReduceLaunched { job, index, .. }
            | SimEvent::ReduceShuffled { job, index, .. }
            | SimEvent::ReduceDone { job, index, .. } => Lane::Reduce(job, index),
            SimEvent::FlowStarted { flow, .. }
            | SimEvent::FlowRate { flow, .. }
            | SimEvent::FlowFinished { flow, .. } => Lane::Flow(flow),
            SimEvent::NodeFailed { node } | SimEvent::NodeRecovered { node } => Lane::Node(node),
            SimEvent::RepairStarted { task, .. } | SimEvent::RepairFinished { task } => {
                Lane::Repair(task)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_snake_case_and_distinct() {
        let events = [
            SimEvent::JobSubmitted {
                job: 0,
                maps: 1,
                reduces: 1,
            },
            SimEvent::JobStarted { job: 0 },
            SimEvent::JobFinished { job: 0 },
            SimEvent::TaskQueued {
                job: 0,
                task: 0,
                degraded: false,
            },
            SimEvent::MapLaunched {
                job: 0,
                task: 0,
                node: 0,
                locality: Locality::NodeLocal,
                speculative: false,
            },
            SimEvent::MapDone {
                job: 0,
                task: 0,
                node: 0,
                locality: Locality::NodeLocal,
                speculative: false,
            },
            SimEvent::FlowStarted {
                flow: 0,
                src: 0,
                dst: 1,
                bytes: 1,
                links: LinkSet::default(),
            },
            SimEvent::NodeFailed { node: 0 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        for k in &kinds {
            assert!(
                k.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "kind {k} not snake_case"
            );
        }
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn lanes_group_lifecycles() {
        let launch = SimEvent::MapLaunched {
            job: 2,
            task: 7,
            node: 3,
            locality: Locality::Degraded,
            speculative: false,
        };
        let done = SimEvent::MapDone {
            job: 2,
            task: 7,
            node: 9,
            locality: Locality::Degraded,
            speculative: false,
        };
        assert_eq!(launch.lane(), done.lane());
        let spec = SimEvent::MapLaunched {
            job: 2,
            task: 7,
            node: 9,
            locality: Locality::Remote,
            speculative: true,
        };
        assert_ne!(launch.lane(), spec.lane());
    }

    #[test]
    fn link_set_round_trips() {
        let set = LinkSet::from_slice(&[4, 80, 81, 5]);
        assert_eq!(set.as_slice(), &[4, 80, 81, 5]);
        assert_eq!(LinkSet::default().as_slice(), &[] as &[u32]);
    }
}
