//! A minimal JSON parser, sufficient to validate the traces this crate
//! emits (and the checked-in schema) without external dependencies.
//!
//! Supports the full JSON value grammar, including all string escapes
//! (`\" \\ \/ \b \f \n \r \t` and `\uXXXX` with UTF-16 surrogate
//! pairs for astral code points), so externally produced traces and
//! cluster logs with unicode escapes parse too.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use a `BTreeMap`, so key iteration is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` as a single JSON value with no trailing garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }

    /// The object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The JSON type name, used in validation messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// A parse failure with byte offset context.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: must pair with a low
                                // surrogate escape to form an astral
                                // code point (RFC 8259 §7).
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired high surrogate \\u escape"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(self.err("unpaired high surrogate \\u escape"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("bad \\u surrogate pair"))?
                            } else {
                                // Lone low surrogates are unrepresentable
                                // in UTF-8 and rejected by from_u32.
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unpaired low surrogate \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` only ever advances
                    // by whole scalars, so it is always a char boundary;
                    // the error arm guards the invariant without a panic.
                    let Some(ch) = self.text.get(self.pos..).and_then(|s| s.chars().next()) else {
                        return Err(self.err("invalid UTF-8 boundary"));
                    };
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Consumes the four hex digits of a `\u` escape.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("short \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Number(-2500.0));
        assert_eq!(
            Json::parse("\"a\\n\\u0041\"").unwrap(),
            Json::String("a\nA".into())
        );
    }

    #[test]
    fn parses_unicode_escapes() {
        // BMP code point beyond ASCII: é.
        assert_eq!(
            Json::parse("\"caf\\u00e9\"").unwrap(),
            Json::String("café".into())
        );
        // Astral code point via a UTF-16 surrogate pair: 😀 (U+1F600).
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::String("😀".into())
        );
        // Uppercase hex works too.
        assert_eq!(
            Json::parse("\"\\uD83D\\uDE00!\"").unwrap(),
            Json::String("😀!".into())
        );
    }

    #[test]
    fn rejects_lone_surrogates() {
        // High surrogate with no pair, or followed by a non-surrogate.
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83d rest\"").is_err());
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
        // Low surrogate on its own.
        assert!(Json::parse("\"\\ude00\"").is_err());
        // Truncated escapes.
        assert!(Json::parse("\"\\u00\"").is_err());
        assert!(Json::parse("\"\\ud83d\\ude\"").is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn round_trips_jsonl_lines() {
        use crate::event::{LinkSet, SimEvent};
        use simkit::time::SimTime;
        let line = crate::jsonl::event_to_json(
            SimTime::from_micros(42),
            &SimEvent::FlowStarted {
                flow: 1,
                src: 0,
                dst: 5,
                bytes: 1 << 27,
                links: LinkSet::from_slice(&[0, 81]),
            },
        );
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("t").and_then(Json::as_f64), Some(42.0));
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("flow_started"));
        assert_eq!(v.get("links").and_then(Json::as_array).unwrap().len(), 2);
    }
}
