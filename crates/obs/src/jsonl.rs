//! JSONL trace writer: one JSON object per line, one line per event.
//!
//! The workspace's `serde` is an offline no-op stand-in, so serialization
//! is hand-rolled. Field order is fixed per event kind and `f64` values
//! print via `Display` (shortest round-trip form), so a trace is a
//! deterministic byte-for-byte function of the event stream — which is
//! what the golden-digest tests hash.

use std::io::{self, Write};

use simkit::time::SimTime;

use crate::event::{DegradedPhase, LinkSet, Locality, SimEvent};
use crate::json::Json;
use crate::sink::EventSink;

/// Serializes one event as a single-line JSON object (no trailing
/// newline). Exposed so tests and digests can render events without an
/// I/O sink.
pub fn event_to_json(at: SimTime, event: &SimEvent) -> String {
    let mut o = Obj::new(at, event.kind());
    match *event {
        SimEvent::JobSubmitted { job, maps, reduces } => {
            o.num("job", job);
            o.num("maps", maps);
            o.num("reduces", reduces);
        }
        SimEvent::JobStarted { job } | SimEvent::JobFinished { job } => o.num("job", job),
        SimEvent::TaskQueued {
            job,
            task,
            degraded,
        } => {
            o.num("job", job);
            o.num("task", task);
            o.bool("degraded", degraded);
        }
        SimEvent::MapLaunched {
            job,
            task,
            node,
            locality,
            speculative,
        }
        | SimEvent::MapDone {
            job,
            task,
            node,
            locality,
            speculative,
        } => {
            o.num("job", job);
            o.num("task", task);
            o.num("node", node);
            o.str("locality", locality.name());
            o.bool("speculative", speculative);
        }
        SimEvent::MapCancelled {
            job,
            task,
            node,
            speculative,
        } => {
            o.num("job", job);
            o.num("task", task);
            o.num("node", node);
            o.bool("speculative", speculative);
        }
        SimEvent::DegradedPlan {
            job,
            task,
            node,
            local,
            same_rack,
            cross_rack,
        } => {
            o.num("job", job);
            o.num("task", task);
            o.num("node", node);
            o.num("local", local);
            o.num("same_rack", same_rack);
            o.num("cross_rack", cross_rack);
        }
        SimEvent::RedundantFetchIssued {
            job,
            task,
            node,
            speculative,
            extra,
        } => {
            o.num("job", job);
            o.num("task", task);
            o.num("node", node);
            o.bool("speculative", speculative);
            o.num("extra", extra);
        }
        SimEvent::FetchCancelled {
            job,
            task,
            node,
            speculative,
            flow,
        } => {
            o.num("job", job);
            o.num("task", task);
            o.num("node", node);
            o.bool("speculative", speculative);
            o.num("flow", flow);
        }
        SimEvent::PhaseBegin {
            job,
            task,
            node,
            speculative,
            phase,
        }
        | SimEvent::PhaseEnd {
            job,
            task,
            node,
            speculative,
            phase,
        } => {
            o.num("job", job);
            o.num("task", task);
            o.num("node", node);
            o.bool("speculative", speculative);
            o.str("phase", phase.name());
        }
        SimEvent::ReduceLaunched { job, index, node }
        | SimEvent::ReduceShuffled { job, index, node }
        | SimEvent::ReduceDone { job, index, node } => {
            o.num("job", job);
            o.num("index", index);
            o.num("node", node);
        }
        SimEvent::FlowStarted {
            flow,
            src,
            dst,
            bytes,
            links,
        } => {
            o.num("flow", flow);
            o.num("src", src);
            o.num("dst", dst);
            o.num("bytes", bytes);
            o.links("links", links);
        }
        SimEvent::FlowRate { flow, rate_bps } => {
            o.num("flow", flow);
            o.f64("rate_bps", rate_bps);
        }
        SimEvent::FlowFinished { flow, cancelled } => {
            o.num("flow", flow);
            o.bool("cancelled", cancelled);
        }
        SimEvent::NodeFailed { node } | SimEvent::NodeRecovered { node } => o.num("node", node),
        SimEvent::RepairStarted {
            task,
            stripe,
            pos,
            replacement,
        } => {
            o.num("task", task);
            o.num("stripe", stripe);
            o.num("pos", pos);
            o.num("replacement", replacement);
        }
        SimEvent::RepairFinished { task } => o.num("task", task),
    }
    o.finish()
}

/// Parses one trace line back into its timestamp and event — the
/// inverse of [`event_to_json`], used by offline analysis (`obs-report`)
/// to rebuild an event stream from a JSONL file.
///
/// Integers round-trip through `f64` (the parser's only number type),
/// which is exact below 2^53 — far beyond any id or byte count the
/// simulator produces. Unknown kinds and missing fields are errors.
pub fn parse_line(line: &str) -> Result<(SimTime, SimEvent), String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let int = |key: &str| -> Result<u64, String> {
        let x = v
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field \"{key}\""))?;
        if !(0.0..=u64::MAX as f64).contains(&x) || x.fract() != 0.0 {
            return Err(format!("field \"{key}\" is not an unsigned integer"));
        }
        Ok(x as u64)
    };
    let int32 = |key: &str| -> Result<u32, String> {
        u32::try_from(int(key)?).map_err(|_| format!("field \"{key}\" exceeds u32"))
    };
    let boolean = |key: &str| -> Result<bool, String> {
        match v.get(key) {
            Some(&Json::Bool(x)) => Ok(x),
            _ => Err(format!("missing boolean field \"{key}\"")),
        }
    };
    let string = |key: &str| -> Result<&str, String> {
        v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string field \"{key}\""))
    };
    let locality = || -> Result<Locality, String> {
        match string("locality")? {
            "node_local" => Ok(Locality::NodeLocal),
            "rack_local" => Ok(Locality::RackLocal),
            "remote" => Ok(Locality::Remote),
            "degraded" => Ok(Locality::Degraded),
            other => Err(format!("unknown locality \"{other}\"")),
        }
    };
    let phase = || -> Result<DegradedPhase, String> {
        match string("phase")? {
            "fetch_k" => Ok(DegradedPhase::FetchK),
            "decode" => Ok(DegradedPhase::Decode),
            "process" => Ok(DegradedPhase::Process),
            other => Err(format!("unknown phase \"{other}\"")),
        }
    };
    let links = || -> Result<LinkSet, String> {
        let items = v
            .get("links")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing array field \"links\"".to_string())?;
        if items.len() > 4 {
            return Err("\"links\" holds more than 4 entries".to_string());
        }
        let mut set = LinkSet {
            len: items.len() as u8,
            links: [0; 4],
        };
        for (i, item) in items.iter().enumerate() {
            let x = item
                .as_f64()
                .filter(|x| (0.0..=u32::MAX as f64).contains(x) && x.fract() == 0.0)
                .ok_or_else(|| "\"links\" entry is not a link index".to_string())?;
            set.links[i] = x as u32;
        }
        Ok(set)
    };
    let at = SimTime::from_micros(int("t")?);
    let event = match string("ev")? {
        "job_submitted" => SimEvent::JobSubmitted {
            job: int32("job")?,
            maps: int32("maps")?,
            reduces: int32("reduces")?,
        },
        "job_started" => SimEvent::JobStarted { job: int32("job")? },
        "job_finished" => SimEvent::JobFinished { job: int32("job")? },
        "task_queued" => SimEvent::TaskQueued {
            job: int32("job")?,
            task: int32("task")?,
            degraded: boolean("degraded")?,
        },
        kind @ ("map_launched" | "map_done") => {
            let (job, task, node) = (int32("job")?, int32("task")?, int32("node")?);
            let (locality, speculative) = (locality()?, boolean("speculative")?);
            if kind == "map_launched" {
                SimEvent::MapLaunched {
                    job,
                    task,
                    node,
                    locality,
                    speculative,
                }
            } else {
                SimEvent::MapDone {
                    job,
                    task,
                    node,
                    locality,
                    speculative,
                }
            }
        }
        "map_cancelled" => SimEvent::MapCancelled {
            job: int32("job")?,
            task: int32("task")?,
            node: int32("node")?,
            speculative: boolean("speculative")?,
        },
        "degraded_plan" => SimEvent::DegradedPlan {
            job: int32("job")?,
            task: int32("task")?,
            node: int32("node")?,
            local: int32("local")?,
            same_rack: int32("same_rack")?,
            cross_rack: int32("cross_rack")?,
        },
        "redundant_fetch_issued" => SimEvent::RedundantFetchIssued {
            job: int32("job")?,
            task: int32("task")?,
            node: int32("node")?,
            speculative: boolean("speculative")?,
            extra: int32("extra")?,
        },
        "fetch_cancelled" => SimEvent::FetchCancelled {
            job: int32("job")?,
            task: int32("task")?,
            node: int32("node")?,
            speculative: boolean("speculative")?,
            flow: int("flow")?,
        },
        kind @ ("phase_begin" | "phase_end") => {
            let (job, task, node) = (int32("job")?, int32("task")?, int32("node")?);
            let (speculative, phase) = (boolean("speculative")?, phase()?);
            if kind == "phase_begin" {
                SimEvent::PhaseBegin {
                    job,
                    task,
                    node,
                    speculative,
                    phase,
                }
            } else {
                SimEvent::PhaseEnd {
                    job,
                    task,
                    node,
                    speculative,
                    phase,
                }
            }
        }
        kind @ ("reduce_launched" | "reduce_shuffled" | "reduce_done") => {
            let (job, index, node) = (int32("job")?, int32("index")?, int32("node")?);
            match kind {
                "reduce_launched" => SimEvent::ReduceLaunched { job, index, node },
                "reduce_shuffled" => SimEvent::ReduceShuffled { job, index, node },
                _ => SimEvent::ReduceDone { job, index, node },
            }
        }
        "flow_started" => SimEvent::FlowStarted {
            flow: int("flow")?,
            src: int32("src")?,
            dst: int32("dst")?,
            bytes: int("bytes")?,
            links: links()?,
        },
        "flow_rate" => SimEvent::FlowRate {
            flow: int("flow")?,
            rate_bps: v
                .get("rate_bps")
                .and_then(Json::as_f64)
                .ok_or_else(|| "missing numeric field \"rate_bps\"".to_string())?,
        },
        "flow_finished" => SimEvent::FlowFinished {
            flow: int("flow")?,
            cancelled: boolean("cancelled")?,
        },
        "node_failed" => SimEvent::NodeFailed {
            node: int32("node")?,
        },
        "node_recovered" => SimEvent::NodeRecovered {
            node: int32("node")?,
        },
        "repair_started" => SimEvent::RepairStarted {
            task: int32("task")?,
            stripe: int32("stripe")?,
            pos: int32("pos")?,
            replacement: int32("replacement")?,
        },
        "repair_finished" => SimEvent::RepairFinished {
            task: int32("task")?,
        },
        other => return Err(format!("unknown event kind \"{other}\"")),
    };
    Ok((at, event))
}

/// A tiny single-line JSON object builder; all keys in this crate are
/// static snake_case identifiers, so no escaping is needed.
struct Obj(String);

impl Obj {
    fn new(at: SimTime, kind: &str) -> Obj {
        Obj(format!("{{\"t\":{},\"ev\":\"{kind}\"", at.as_micros()))
    }

    fn num(&mut self, key: &str, value: impl Into<u64>) {
        use std::fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":{}", value.into());
    }

    fn f64(&mut self, key: &str, value: f64) {
        use std::fmt::Write as _;
        assert!(value.is_finite(), "non-finite {key} in trace");
        let _ = write!(self.0, ",\"{key}\":{value}");
    }

    fn bool(&mut self, key: &str, value: bool) {
        use std::fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":{value}");
    }

    fn str(&mut self, key: &str, value: &str) {
        use std::fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":\"{value}\"");
    }

    fn links(&mut self, key: &str, value: LinkSet) {
        use std::fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":[");
        for (i, link) in value.as_slice().iter().enumerate() {
            if i > 0 {
                self.0.push(',');
            }
            let _ = write!(self.0, "{link}");
        }
        self.0.push(']');
    }

    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

/// An [`EventSink`] writing one JSON line per event to `W`.
///
/// I/O errors are deferred: `record` stores the first error and ignores
/// later events; [`JsonlSink::finish`] flushes and surfaces it.
///
/// Dropping a sink without calling `finish` (an early-return path)
/// still flushes best-effort, so buffered events are not silently lost;
/// a flush failure on that path is logged to stderr because `Drop`
/// cannot return it.
pub struct JsonlSink<W: Write> {
    /// `Some` until `finish` hands the writer back; `Drop` flushes any
    /// writer still present.
    out: Option<W>,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing to `out`. Wrap files in a `BufWriter`.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out: Some(out),
            error: None,
        }
    }

    /// Flushes and returns the first I/O error encountered, if any.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        // The writer is always present before `finish` consumes self.
        let Some(mut out) = self.out.take() else {
            return Err(io::Error::other("jsonl sink already finished"));
        };
        out.flush()?;
        Ok(out)
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let Some(out) = self.out.as_mut() else {
            return; // finish() already ran
        };
        if let Some(e) = self.error.take() {
            eprintln!("jsonl sink dropped with unreported write error: {e}");
        }
        if let Err(e) = out.flush() {
            eprintln!("jsonl sink flush on drop failed: {e}");
        }
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, at: SimTime, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let Some(out) = self.out.as_mut() else {
            return;
        };
        let line = event_to_json(at, event);
        if let Err(e) = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DegradedPhase, Locality};

    #[test]
    fn renders_fixed_field_order() {
        let json = event_to_json(
            SimTime::from_micros(1500),
            &SimEvent::MapLaunched {
                job: 0,
                task: 12,
                node: 3,
                locality: Locality::Degraded,
                speculative: false,
            },
        );
        assert_eq!(
            json,
            "{\"t\":1500,\"ev\":\"map_launched\",\"job\":0,\"task\":12,\
             \"node\":3,\"locality\":\"degraded\",\"speculative\":false}"
        );
    }

    #[test]
    fn renders_links_and_rates() {
        let json = event_to_json(
            SimTime::ZERO,
            &SimEvent::FlowStarted {
                flow: 7,
                src: 1,
                dst: 2,
                bytes: 1024,
                links: LinkSet::from_slice(&[2, 80, 83, 5]),
            },
        );
        assert!(json.ends_with("\"links\":[2,80,83,5]}"), "{json}");
        let rate = event_to_json(
            SimTime::ZERO,
            &SimEvent::FlowRate {
                flow: 7,
                rate_bps: 12500000.0,
            },
        );
        assert!(rate.contains("\"rate_bps\":12500000"), "{rate}");
    }

    /// A writer that exposes bytes to `shared` only on an explicit
    /// `flush` — unlike `BufWriter`, its own drop publishes nothing, so
    /// it can tell whether `JsonlSink` flushed.
    struct FlushOnly {
        buf: Vec<u8>,
        shared: std::rc::Rc<std::cell::RefCell<Vec<u8>>>,
    }

    impl Write for FlushOnly {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.buf.extend_from_slice(data);
            Ok(data.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            self.shared.borrow_mut().append(&mut self.buf);
            Ok(())
        }
    }

    #[test]
    fn dropping_an_unfinished_sink_flushes_buffered_events() {
        let shared = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        {
            let mut sink = JsonlSink::new(FlushOnly {
                buf: Vec::new(),
                shared: shared.clone(),
            });
            sink.record(SimTime::from_micros(5), &SimEvent::JobStarted { job: 1 });
            assert!(
                shared.borrow().is_empty(),
                "nothing published before drop/finish"
            );
            // Early-return path: the sink goes out of scope without
            // `finish()`.
        }
        let text = String::from_utf8(shared.borrow().clone()).unwrap();
        assert_eq!(text, "{\"t\":5,\"ev\":\"job_started\",\"job\":1}\n");
    }

    #[test]
    fn parse_line_inverts_event_to_json_for_every_kind() {
        let events = [
            SimEvent::JobSubmitted {
                job: 3,
                maps: 64,
                reduces: 8,
            },
            SimEvent::JobStarted { job: 3 },
            SimEvent::JobFinished { job: 3 },
            SimEvent::TaskQueued {
                job: 3,
                task: 17,
                degraded: true,
            },
            SimEvent::MapLaunched {
                job: 3,
                task: 17,
                node: 11,
                locality: Locality::RackLocal,
                speculative: true,
            },
            SimEvent::MapDone {
                job: 3,
                task: 17,
                node: 11,
                locality: Locality::Degraded,
                speculative: false,
            },
            SimEvent::MapCancelled {
                job: 3,
                task: 17,
                node: 2,
                speculative: true,
            },
            SimEvent::DegradedPlan {
                job: 3,
                task: 17,
                node: 11,
                local: 1,
                same_rack: 2,
                cross_rack: 3,
            },
            SimEvent::RedundantFetchIssued {
                job: 3,
                task: 17,
                node: 11,
                speculative: false,
                extra: 2,
            },
            SimEvent::FetchCancelled {
                job: 3,
                task: 17,
                node: 11,
                speculative: false,
                flow: 902,
            },
            SimEvent::PhaseBegin {
                job: 3,
                task: 17,
                node: 11,
                speculative: false,
                phase: DegradedPhase::FetchK,
            },
            SimEvent::PhaseEnd {
                job: 3,
                task: 17,
                node: 11,
                speculative: false,
                phase: DegradedPhase::Decode,
            },
            SimEvent::ReduceLaunched {
                job: 3,
                index: 1,
                node: 5,
            },
            SimEvent::ReduceShuffled {
                job: 3,
                index: 1,
                node: 5,
            },
            SimEvent::ReduceDone {
                job: 3,
                index: 1,
                node: 5,
            },
            SimEvent::FlowStarted {
                flow: 901,
                src: 4,
                dst: 19,
                bytes: 1 << 27,
                links: LinkSet::from_slice(&[4, 80, 81, 19]),
            },
            SimEvent::FlowRate {
                flow: 901,
                rate_bps: 15625000.5,
            },
            SimEvent::FlowFinished {
                flow: 901,
                cancelled: true,
            },
            SimEvent::NodeFailed { node: 7 },
            SimEvent::NodeRecovered { node: 7 },
            SimEvent::RepairStarted {
                task: 12,
                stripe: 4,
                pos: 9,
                replacement: 21,
            },
            SimEvent::RepairFinished { task: 12 },
        ];
        for (i, event) in events.iter().enumerate() {
            let at = SimTime::from_micros(1_000_000 + i as u64);
            let line = event_to_json(at, event);
            let (back_at, back) = parse_line(&line).unwrap();
            assert_eq!(back_at, at, "{line}");
            assert_eq!(&back, event, "{line}");
        }
    }

    #[test]
    fn parse_line_rejects_malformed_input() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"t\":0}").is_err(), "missing ev");
        assert!(parse_line("{\"t\":0,\"ev\":\"bogus_kind\"}").is_err());
        assert!(
            parse_line("{\"t\":0,\"ev\":\"node_failed\"}").is_err(),
            "missing node field"
        );
        assert!(
            parse_line("{\"t\":-1,\"ev\":\"node_failed\",\"node\":0}").is_err(),
            "negative timestamp"
        );
        assert!(
            parse_line("{\"t\":0.5,\"ev\":\"node_failed\",\"node\":0}").is_err(),
            "fractional timestamp"
        );
    }

    #[test]
    fn sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(
            SimTime::ZERO,
            &SimEvent::PhaseBegin {
                job: 0,
                task: 1,
                node: 2,
                speculative: false,
                phase: DegradedPhase::FetchK,
            },
        );
        sink.record(SimTime::from_secs(1), &SimEvent::NodeFailed { node: 9 });
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert!(text.contains("\"phase\":\"fetch_k\""));
    }
}
