//! `obs` — structured simulation tracing, timelines, and derived metrics.
//!
//! A zero-cost-when-disabled event layer for the degraded-first
//! scheduling reproduction. The domain crates (`mapreduce`, `netsim`,
//! `ecstore`, `repair`) emit [`event::SimEvent`] records through a
//! [`sink::Recorder`]; this crate ships three sinks:
//!
//! * [`jsonl::JsonlSink`] — one JSON object per line, schema-validated
//!   by [`schema::validate_jsonl`] against the checked-in
//!   [`schema::TRACE_SCHEMA_V1`];
//! * [`chrome::ChromeTraceSink`] — a `chrome://tracing` / Perfetto
//!   timeline with one lane per map slot and one counter track per
//!   network link;
//! * [`aggregate::Aggregator`] — in-memory derivation of slot/link
//!   utilization, degraded-read latency percentiles and the
//!   degraded-fetch/normal-map overlap behind the paper's Figures 5/7/8.
//!
//! The crate depends only on `simkit` and identifies everything by plain
//! integers, so it sits below the domain crates in the dependency graph.
//!
//! # Example
//!
//! ```
//! use obs::event::SimEvent;
//! use obs::sink::{EventSink, Recorder, VecSink};
//! use simkit::time::SimTime;
//!
//! let mut sink = VecSink::new();
//! let mut rec = Recorder::on(&mut sink);
//! rec.emit(SimTime::from_secs(1), || SimEvent::JobStarted { job: 0 });
//! assert_eq!(sink.events.len(), 1);
//!
//! // Disabled: the closure never runs, nothing allocates.
//! let mut off = Recorder::off();
//! off.emit(SimTime::ZERO, || unreachable!());
//! ```

pub mod aggregate;
pub mod chrome;
pub mod diff;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod schema;
pub mod sink;
pub mod spill;

pub use aggregate::{AggregateReport, Aggregator, AggregatorConfig, AggregatorMode, LinkUsage};
pub use chrome::{ChromeConfig, ChromeTraceSink};
pub use diff::{diff_jsonl, diff_streams, LaneDelta, LaneSpan, TraceDiff};
pub use event::{DegradedPhase, Lane, LinkSet, Locality, SimEvent};
pub use jsonl::JsonlSink;
pub use sink::{EventSink, FlowRateFilter, FlowRateFilterConfig, Recorder, Tee, VecSink};
pub use spill::{validate_spill, SpillConfig, SpillManifest, SpillSink};
