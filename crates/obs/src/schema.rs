//! Validation of JSONL traces against the checked-in trace schema.
//!
//! The schema (`schema/trace-v1.json`, embedded via `include_str!`) maps
//! each event kind to its exact field set and field types. Validation is
//! strict: unknown kinds, missing fields, extra fields, wrong types and
//! out-of-enum strings are all errors. CI runs this over a smoke trace
//! on every push, so the schema file is the compatibility contract for
//! downstream trace consumers.

use std::collections::BTreeMap;

use crate::json::Json;

/// The embedded trace schema, version 1.
pub const TRACE_SCHEMA_V1: &str = include_str!("../schema/trace-v1.json");

/// A field type in the schema dialect.
#[derive(Clone, Debug, PartialEq)]
enum FieldType {
    /// Non-negative integer-valued number.
    Uint,
    /// Any finite number.
    Number,
    /// `true` / `false`.
    Bool,
    /// Any string.
    String,
    /// Array of non-negative integer-valued numbers.
    UintArray,
    /// String restricted to the named enum's values.
    Enum(String),
}

impl FieldType {
    fn parse(name: &str) -> Result<FieldType, String> {
        Ok(match name {
            "uint" => FieldType::Uint,
            "number" => FieldType::Number,
            "bool" => FieldType::Bool,
            "string" => FieldType::String,
            "uint_array" => FieldType::UintArray,
            other => FieldType::Enum(other.to_string()),
        })
    }
}

/// A parsed trace schema.
pub struct TraceSchema {
    common: BTreeMap<String, FieldType>,
    events: BTreeMap<String, BTreeMap<String, FieldType>>,
    enums: BTreeMap<String, Vec<String>>,
}

impl TraceSchema {
    /// Parses a schema document (e.g. [`TRACE_SCHEMA_V1`]).
    pub fn parse(text: &str) -> Result<TraceSchema, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let fields = |value: &Json, what: &str| -> Result<BTreeMap<String, FieldType>, String> {
            let Json::Object(map) = value else {
                return Err(format!("{what} must be an object"));
            };
            map.iter()
                .map(|(k, v)| {
                    let ty = v
                        .as_str()
                        .ok_or_else(|| format!("{what}.{k} must be a type name"))?;
                    Ok((k.clone(), FieldType::parse(ty)?))
                })
                .collect()
        };
        let common = fields(doc.get("common").ok_or("missing 'common'")?, "common")?;
        let Some(Json::Object(event_map)) = doc.get("events") else {
            return Err("missing 'events' object".into());
        };
        let mut events = BTreeMap::new();
        for (kind, spec) in event_map {
            events.insert(kind.clone(), fields(spec, kind)?);
        }
        let mut enums = BTreeMap::new();
        if let Some(Json::Object(enum_map)) = doc.get("enums") {
            for (name, values) in enum_map {
                let values = values
                    .as_array()
                    .ok_or_else(|| format!("enum {name} must be an array"))?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| format!("enum {name} has a non-string value"))
                    })
                    .collect::<Result<Vec<String>, String>>()?;
                enums.insert(name.clone(), values);
            }
        }
        // Every enum-typed field must reference a declared enum.
        for (kind, spec) in &events {
            for (field, ty) in spec {
                if let FieldType::Enum(name) = ty {
                    if !enums.contains_key(name) {
                        return Err(format!("{kind}.{field}: unknown type '{name}'"));
                    }
                }
            }
        }
        Ok(TraceSchema {
            common,
            events,
            enums,
        })
    }

    fn check_type(&self, value: &Json, ty: &FieldType) -> Result<(), String> {
        let is_uint = |v: &Json| {
            v.as_f64()
                .is_some_and(|x| x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64)
        };
        let ok = match ty {
            FieldType::Uint => is_uint(value),
            FieldType::Number => value.as_f64().is_some_and(f64::is_finite),
            FieldType::Bool => matches!(value, Json::Bool(_)),
            FieldType::String => value.as_str().is_some(),
            FieldType::UintArray => value
                .as_array()
                .is_some_and(|items| items.iter().all(is_uint)),
            FieldType::Enum(name) => value
                .as_str()
                .is_some_and(|s| self.enums[name].iter().any(|v| v == s)),
        };
        if ok {
            Ok(())
        } else {
            Err(format!("expected {ty:?}, got {}", value.type_name()))
        }
    }

    /// Validates one parsed trace line.
    pub fn validate_event(&self, value: &Json) -> Result<(), String> {
        let Json::Object(map) = value else {
            return Err(format!(
                "event must be an object, got {}",
                value.type_name()
            ));
        };
        for (field, ty) in &self.common {
            let v = map
                .get(field)
                .ok_or_else(|| format!("missing common field '{field}'"))?;
            self.check_type(v, ty)
                .map_err(|e| format!("field '{field}': {e}"))?;
        }
        let kind = map["ev"].as_str().unwrap_or_default();
        let spec = self
            .events
            .get(kind)
            .ok_or_else(|| format!("unknown event kind '{kind}'"))?;
        for (field, ty) in spec {
            let v = map
                .get(field)
                .ok_or_else(|| format!("{kind}: missing field '{field}'"))?;
            self.check_type(v, ty)
                .map_err(|e| format!("{kind}.{field}: {e}"))?;
        }
        for field in map.keys() {
            if !self.common.contains_key(field) && !spec.contains_key(field) {
                return Err(format!("{kind}: unexpected field '{field}'"));
            }
        }
        Ok(())
    }
}

/// Validates a whole JSONL trace against a schema, returning the number
/// of validated lines, or a message naming the first offending line.
pub fn validate_jsonl(schema: &TraceSchema, trace: &str) -> Result<usize, String> {
    let mut count = 0;
    let mut last_t = 0.0f64;
    for (i, line) in trace.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let t = value.get("t").and_then(Json::as_f64).unwrap_or(-1.0);
        schema
            .validate_event(&value)
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        if t < last_t {
            return Err(format!(
                "line {}: timestamp {t} goes backwards (previous {last_t})",
                i + 1
            ));
        }
        last_t = t;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Locality, SimEvent};
    use crate::jsonl::event_to_json;
    use simkit::time::SimTime;

    #[test]
    fn embedded_schema_parses() {
        let schema = TraceSchema::parse(TRACE_SCHEMA_V1).unwrap();
        assert!(schema.events.len() >= 20, "schema lost event kinds");
    }

    #[test]
    fn accepts_emitted_events() {
        let schema = TraceSchema::parse(TRACE_SCHEMA_V1).unwrap();
        let lines = [
            event_to_json(SimTime::ZERO, &SimEvent::NodeFailed { node: 4 }),
            event_to_json(
                SimTime::from_micros(10),
                &SimEvent::MapLaunched {
                    job: 0,
                    task: 1,
                    node: 2,
                    locality: Locality::RackLocal,
                    speculative: true,
                },
            ),
            event_to_json(
                SimTime::from_micros(20),
                &SimEvent::FlowRate {
                    flow: 3,
                    rate_bps: 1.25e8,
                },
            ),
        ]
        .join("\n");
        assert_eq!(validate_jsonl(&schema, &lines), Ok(3));
    }

    #[test]
    fn rejects_bad_traces() {
        let schema = TraceSchema::parse(TRACE_SCHEMA_V1).unwrap();
        // Unknown kind.
        let bad = r#"{"t":0,"ev":"bogus"}"#;
        assert!(validate_jsonl(&schema, bad).is_err());
        // Missing field.
        let bad = r#"{"t":0,"ev":"node_failed"}"#;
        assert!(validate_jsonl(&schema, bad).is_err());
        // Extra field.
        let bad = r#"{"t":0,"ev":"node_failed","node":1,"extra":2}"#;
        assert!(validate_jsonl(&schema, bad).is_err());
        // Enum violation.
        let bad = r#"{"t":0,"ev":"map_launched","job":0,"task":0,"node":0,"locality":"psychic","speculative":false}"#;
        assert!(validate_jsonl(&schema, bad).is_err());
        // Backwards time.
        let bad = "{\"t\":5,\"ev\":\"node_failed\",\"node\":1}\n{\"t\":4,\"ev\":\"node_failed\",\"node\":2}";
        assert!(validate_jsonl(&schema, bad)
            .unwrap_err()
            .contains("backwards"));
    }
}
