//! The [`EventSink`] trait and the zero-cost [`Recorder`] handle that
//! instrumented code threads through its hot paths.

use std::collections::BTreeMap;

use simkit::time::{SimDuration, SimTime};

use crate::event::SimEvent;

/// A consumer of timestamped simulation events.
///
/// Sinks receive events in global timestamp order (ties broken by
/// emission order). Implementations must not reorder them.
pub trait EventSink {
    /// Consumes one event occurring at `at`.
    fn record(&mut self, at: SimTime, event: &SimEvent);
}

/// A maybe-disabled handle to an [`EventSink`].
///
/// Instrumented code calls [`Recorder::emit`] with a closure that builds
/// the event; when the recorder is off the closure is never run, so the
/// disabled path performs one branch and zero allocations, keeping
/// untraced runs bit-identical to uninstrumented ones.
pub struct Recorder<'a> {
    sink: Option<&'a mut dyn EventSink>,
}

impl<'a> Recorder<'a> {
    /// A disabled recorder: every `emit` is a no-op.
    pub fn off() -> Recorder<'static> {
        Recorder { sink: None }
    }

    /// A recorder forwarding to `sink`.
    pub fn on(sink: &'a mut dyn EventSink) -> Recorder<'a> {
        Recorder { sink: Some(sink) }
    }

    /// True if events are being consumed. Use to skip expensive
    /// preparatory work (the `emit` closure itself is already lazy).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event produced by `make` at time `at`, if enabled.
    #[inline]
    pub fn emit(&mut self, at: SimTime, make: impl FnOnce() -> SimEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(at, &make());
        }
    }
}

/// A sink that buffers every event in memory; the workhorse of tests.
#[derive(Default)]
pub struct VecSink {
    /// The recorded `(time, event)` pairs, in arrival order.
    pub events: Vec<(SimTime, SimEvent)>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl EventSink for VecSink {
    fn record(&mut self, at: SimTime, event: &SimEvent) {
        self.events.push((at, event.clone()));
    }
}

/// Fans one event stream out to two sinks, e.g. a JSONL file plus the
/// in-memory aggregator in a single traced run.
pub struct Tee<'a> {
    first: &'a mut dyn EventSink,
    second: &'a mut dyn EventSink,
}

impl<'a> Tee<'a> {
    /// A sink forwarding every event to `first` then `second`.
    pub fn new(first: &'a mut dyn EventSink, second: &'a mut dyn EventSink) -> Tee<'a> {
        Tee { first, second }
    }
}

impl EventSink for Tee<'_> {
    fn record(&mut self, at: SimTime, event: &SimEvent) {
        self.first.record(at, event);
        self.second.record(at, event);
    }
}

/// Opt-in downsampling of `flow_rate` events.
///
/// Max-min fair-share reallocation re-rates every flow sharing a link on
/// each arrival or departure, so `flow_rate` dominates long traces by an
/// order of magnitude. This adapter forwards every non-`flow_rate` event
/// untouched and thins the rest: a flow's first rate always passes, and a
/// subsequent one passes only when at least [`min_interval`] has elapsed
/// since the last *emitted* rate for that flow **and** the rate moved by
/// at least [`min_delta_bps`]. The final rate before `flow_finished` may
/// therefore be suppressed — consumers needing exact byte accounting
/// should trace unfiltered.
///
/// With both thresholds zero every event passes, byte-identically.
///
/// [`min_interval`]: FlowRateFilterConfig::min_interval
/// [`min_delta_bps`]: FlowRateFilterConfig::min_delta_bps
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowRateFilterConfig {
    /// Minimum absolute rate change (bits/sec) worth re-emitting.
    pub min_delta_bps: f64,
    /// Minimum gap between emitted rates of one flow.
    pub min_interval: SimDuration,
}

/// An [`EventSink`] adapter applying [`FlowRateFilterConfig`]; see there.
pub struct FlowRateFilter<'a> {
    inner: &'a mut dyn EventSink,
    cfg: FlowRateFilterConfig,
    /// Last emitted `(rate_bps, at)` per live flow.
    last: BTreeMap<u64, (f64, SimTime)>,
    suppressed: u64,
}

impl<'a> FlowRateFilter<'a> {
    /// A filter forwarding the thinned stream to `inner`.
    pub fn new(inner: &'a mut dyn EventSink, cfg: FlowRateFilterConfig) -> FlowRateFilter<'a> {
        FlowRateFilter {
            inner,
            cfg,
            last: BTreeMap::new(),
            suppressed: 0,
        }
    }

    /// How many `flow_rate` events were dropped so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

impl EventSink for FlowRateFilter<'_> {
    fn record(&mut self, at: SimTime, event: &SimEvent) {
        match event {
            SimEvent::FlowRate { flow, rate_bps } => {
                if let Some(&(last_rate, last_at)) = self.last.get(flow) {
                    let moved = (rate_bps - last_rate).abs() >= self.cfg.min_delta_bps;
                    let due = at.duration_since(last_at) >= self.cfg.min_interval;
                    if !(moved && due) {
                        self.suppressed += 1;
                        return;
                    }
                }
                self.last.insert(*flow, (*rate_bps, at));
            }
            SimEvent::FlowFinished { flow, .. } => {
                self.last.remove(flow);
            }
            // Every other kind passes through untouched. The arm is
            // spelled out (M1): a new event kind must decide here
            // whether it carries per-flow state to thin or reset.
            SimEvent::JobSubmitted { .. }
            | SimEvent::JobStarted { .. }
            | SimEvent::JobFinished { .. }
            | SimEvent::TaskQueued { .. }
            | SimEvent::MapLaunched { .. }
            | SimEvent::MapDone { .. }
            | SimEvent::MapCancelled { .. }
            | SimEvent::DegradedPlan { .. }
            | SimEvent::RedundantFetchIssued { .. }
            | SimEvent::FetchCancelled { .. }
            | SimEvent::PhaseBegin { .. }
            | SimEvent::PhaseEnd { .. }
            | SimEvent::ReduceLaunched { .. }
            | SimEvent::ReduceShuffled { .. }
            | SimEvent::ReduceDone { .. }
            | SimEvent::FlowStarted { .. }
            | SimEvent::NodeFailed { .. }
            | SimEvent::NodeRecovered { .. }
            | SimEvent::RepairStarted { .. }
            | SimEvent::RepairFinished { .. } => {}
        }
        self.inner.record(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_never_builds_events() {
        let mut rec = Recorder::off();
        assert!(!rec.is_enabled());
        rec.emit(SimTime::ZERO, || panic!("built an event while disabled"));
    }

    #[test]
    fn enabled_recorder_forwards() {
        let mut sink = VecSink::new();
        {
            let mut rec = Recorder::on(&mut sink);
            assert!(rec.is_enabled());
            rec.emit(SimTime::from_secs(1), || SimEvent::NodeFailed { node: 3 });
        }
        assert_eq!(
            sink.events,
            vec![(SimTime::from_secs(1), SimEvent::NodeFailed { node: 3 })]
        );
    }

    fn rate(flow: u64, rate_bps: f64) -> SimEvent {
        SimEvent::FlowRate { flow, rate_bps }
    }

    fn rates_of(sink: &VecSink) -> Vec<(u64, u64, f64)> {
        sink.events
            .iter()
            .filter_map(|(at, ev)| match ev {
                SimEvent::FlowRate { flow, rate_bps } => Some((at.as_micros(), *flow, *rate_bps)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn flow_rate_filter_applies_both_thresholds() {
        let mut inner = VecSink::new();
        let cfg = FlowRateFilterConfig {
            min_delta_bps: 100.0,
            min_interval: SimDuration::from_secs(10),
        };
        let mut filter = FlowRateFilter::new(&mut inner, cfg);
        let t = SimTime::from_secs;
        // First rate for a flow always passes.
        filter.record(t(0), &rate(7, 1000.0));
        // Big delta but only 5s elapsed: suppressed.
        filter.record(t(5), &rate(7, 2000.0));
        // 10s elapsed but delta 50 < 100: suppressed.
        filter.record(t(10), &rate(7, 1050.0));
        // Both thresholds met (vs the last *emitted* rate, not the last seen).
        filter.record(t(12), &rate(7, 2000.0));
        // A different flow keeps independent state.
        filter.record(t(12), &rate(8, 500.0));
        // Non-rate events always pass.
        filter.record(t(13), &SimEvent::JobStarted { job: 1 });
        assert_eq!(filter.suppressed(), 2);
        assert_eq!(
            rates_of(&inner),
            vec![
                (0, 7, 1000.0),
                (12_000_000, 7, 2000.0),
                (12_000_000, 8, 500.0)
            ]
        );
        assert_eq!(inner.events.len(), 4);
    }

    #[test]
    fn flow_rate_filter_resets_on_flow_finished() {
        let mut inner = VecSink::new();
        let cfg = FlowRateFilterConfig {
            min_delta_bps: 1e9,
            min_interval: SimDuration::from_secs(1000),
        };
        let mut filter = FlowRateFilter::new(&mut inner, cfg);
        let t = SimTime::from_secs;
        filter.record(t(0), &rate(3, 100.0));
        filter.record(t(1), &rate(3, 100.5)); // suppressed
        filter.record(
            t(2),
            &SimEvent::FlowFinished {
                flow: 3,
                cancelled: false,
            },
        );
        // Reused id after finish counts as a fresh flow: first rate passes.
        filter.record(t(3), &rate(3, 100.5));
        assert_eq!(filter.suppressed(), 1);
        assert_eq!(rates_of(&inner), vec![(0, 3, 100.0), (3_000_000, 3, 100.5)]);
    }

    #[test]
    fn flow_rate_filter_with_zero_thresholds_passes_everything() {
        let mut plain = VecSink::new();
        let mut filtered_inner = VecSink::new();
        let cfg = FlowRateFilterConfig {
            min_delta_bps: 0.0,
            min_interval: SimDuration::ZERO,
        };
        let mut filter = FlowRateFilter::new(&mut filtered_inner, cfg);
        let t = SimTime::from_secs;
        let script = [
            (t(0), rate(1, 10.0)),
            (t(0), rate(1, 10.0)), // same instant, same value: still passes
            (t(1), rate(2, 20.0)),
            (
                t(1),
                SimEvent::FlowFinished {
                    flow: 1,
                    cancelled: true,
                },
            ),
            (t(2), rate(2, 30.0)),
        ];
        for (at, ev) in &script {
            plain.record(*at, ev);
            filter.record(*at, ev);
        }
        assert_eq!(filter.suppressed(), 0);
        assert_eq!(plain.events, filtered_inner.events);
    }

    #[test]
    fn tee_duplicates() {
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        {
            let mut tee = Tee::new(&mut a, &mut b);
            tee.record(SimTime::ZERO, &SimEvent::JobStarted { job: 1 });
        }
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 1);
    }
}
