//! The [`EventSink`] trait and the zero-cost [`Recorder`] handle that
//! instrumented code threads through its hot paths.

use simkit::time::SimTime;

use crate::event::SimEvent;

/// A consumer of timestamped simulation events.
///
/// Sinks receive events in global timestamp order (ties broken by
/// emission order). Implementations must not reorder them.
pub trait EventSink {
    /// Consumes one event occurring at `at`.
    fn record(&mut self, at: SimTime, event: &SimEvent);
}

/// A maybe-disabled handle to an [`EventSink`].
///
/// Instrumented code calls [`Recorder::emit`] with a closure that builds
/// the event; when the recorder is off the closure is never run, so the
/// disabled path performs one branch and zero allocations, keeping
/// untraced runs bit-identical to uninstrumented ones.
pub struct Recorder<'a> {
    sink: Option<&'a mut dyn EventSink>,
}

impl<'a> Recorder<'a> {
    /// A disabled recorder: every `emit` is a no-op.
    pub fn off() -> Recorder<'static> {
        Recorder { sink: None }
    }

    /// A recorder forwarding to `sink`.
    pub fn on(sink: &'a mut dyn EventSink) -> Recorder<'a> {
        Recorder { sink: Some(sink) }
    }

    /// True if events are being consumed. Use to skip expensive
    /// preparatory work (the `emit` closure itself is already lazy).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event produced by `make` at time `at`, if enabled.
    #[inline]
    pub fn emit(&mut self, at: SimTime, make: impl FnOnce() -> SimEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(at, &make());
        }
    }
}

/// A sink that buffers every event in memory; the workhorse of tests.
#[derive(Default)]
pub struct VecSink {
    /// The recorded `(time, event)` pairs, in arrival order.
    pub events: Vec<(SimTime, SimEvent)>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl EventSink for VecSink {
    fn record(&mut self, at: SimTime, event: &SimEvent) {
        self.events.push((at, event.clone()));
    }
}

/// Fans one event stream out to two sinks, e.g. a JSONL file plus the
/// in-memory aggregator in a single traced run.
pub struct Tee<'a> {
    first: &'a mut dyn EventSink,
    second: &'a mut dyn EventSink,
}

impl<'a> Tee<'a> {
    /// A sink forwarding every event to `first` then `second`.
    pub fn new(first: &'a mut dyn EventSink, second: &'a mut dyn EventSink) -> Tee<'a> {
        Tee { first, second }
    }
}

impl EventSink for Tee<'_> {
    fn record(&mut self, at: SimTime, event: &SimEvent) {
        self.first.record(at, event);
        self.second.record(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_never_builds_events() {
        let mut rec = Recorder::off();
        assert!(!rec.is_enabled());
        rec.emit(SimTime::ZERO, || panic!("built an event while disabled"));
    }

    #[test]
    fn enabled_recorder_forwards() {
        let mut sink = VecSink::new();
        {
            let mut rec = Recorder::on(&mut sink);
            assert!(rec.is_enabled());
            rec.emit(SimTime::from_secs(1), || SimEvent::NodeFailed { node: 3 });
        }
        assert_eq!(
            sink.events,
            vec![(SimTime::from_secs(1), SimEvent::NodeFailed { node: 3 })]
        );
    }

    #[test]
    fn tee_duplicates() {
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        {
            let mut tee = Tee::new(&mut a, &mut b);
            tee.record(SimTime::ZERO, &SimEvent::JobStarted { job: 1 });
        }
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 1);
    }
}
