//! Chunked JSONL trace spill: size-bounded segment files plus a
//! manifest, so week-long traces stream to disk instead of growing one
//! unbounded file (or an in-memory buffer).
//!
//! A [`SpillSink`] writes the same byte-for-byte JSONL lines as
//! [`crate::jsonl::JsonlSink`], rolling to a new `segment-NNNNNN.jsonl`
//! file whenever the current one would exceed the configured size (a
//! segment always holds at least one event, so an oversized line never
//! wedges the sink). [`SpillSink::finish`] then writes `manifest.json`
//! describing every segment — file name, event count, byte count, first
//! and last timestamp — with a fixed field order so the manifest itself
//! is a deterministic function of the event stream.
//!
//! [`validate_spill`] is the reading half: it cross-checks the manifest
//! against the segment files on disk and returns the parsed
//! [`SpillManifest`] for downstream tools.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use simkit::time::SimTime;

use crate::event::SimEvent;
use crate::json::Json;
use crate::jsonl::event_to_json;
use crate::sink::EventSink;

/// Name of the manifest written next to the segments.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Manifest schema version written and accepted by this build.
pub const MANIFEST_VERSION: u64 = 1;

/// Where and how to spill; see [`SpillSink`].
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Directory receiving `segment-NNNNNN.jsonl` files and the
    /// manifest; created (with parents) if absent.
    pub dir: PathBuf,
    /// Segment size bound in bytes. A segment closes once it holds at
    /// least one event and the next line would push it past this.
    pub max_segment_bytes: u64,
}

/// One closed segment as recorded in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name relative to the spill directory.
    pub file: String,
    /// Number of JSONL lines.
    pub events: u64,
    /// Exact file size in bytes.
    pub bytes: u64,
    /// Timestamp (micros) of the first event.
    pub t_first: u64,
    /// Timestamp (micros) of the last event.
    pub t_last: u64,
}

/// The parsed `manifest.json`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpillManifest {
    /// Every closed segment, in write order.
    pub segments: Vec<SegmentMeta>,
    /// Sum of per-segment event counts.
    pub total_events: u64,
    /// Sum of per-segment byte counts.
    pub total_bytes: u64,
}

/// An [`EventSink`] spilling the stream to size-bounded JSONL segments.
///
/// I/O errors are deferred like in [`crate::jsonl::JsonlSink`]: `record`
/// stores the first error and drops later events; [`SpillSink::finish`]
/// surfaces it. Dropping without `finish` flushes the open segment
/// best-effort but writes **no manifest** — a spill directory missing
/// its manifest is how a crashed run looks, and [`validate_spill`]
/// rejects it.
pub struct SpillSink {
    dir: PathBuf,
    max_segment_bytes: u64,
    /// Writer for the open segment, if one has been started.
    out: Option<BufWriter<File>>,
    /// Running meta of the open segment.
    cur: Option<SegmentMeta>,
    segments: Vec<SegmentMeta>,
    error: Option<io::Error>,
}

impl SpillSink {
    /// Creates the spill directory and an empty sink. Segment files are
    /// opened lazily, so an event-free run leaves only a manifest.
    pub fn create(cfg: SpillConfig) -> io::Result<SpillSink> {
        fs::create_dir_all(&cfg.dir)?;
        Ok(SpillSink {
            dir: cfg.dir,
            max_segment_bytes: cfg.max_segment_bytes.max(1),
            out: None,
            cur: None,
            segments: Vec::new(),
            error: None,
        })
    }

    /// Flushes and closes the open segment, pushing its meta.
    fn roll(&mut self) -> io::Result<()> {
        if let (Some(mut out), Some(meta)) = (self.out.take(), self.cur.take()) {
            out.flush()?;
            self.segments.push(meta);
        }
        Ok(())
    }

    fn write_line(&mut self, at: SimTime, line: &str) -> io::Result<()> {
        let line_bytes = line.len() as u64 + 1;
        if let Some(cur) = &self.cur {
            if cur.bytes + line_bytes > self.max_segment_bytes {
                self.roll()?;
            }
        }
        if self.out.is_none() {
            let file = format!("segment-{:06}.jsonl", self.segments.len());
            let out = BufWriter::new(File::create(self.dir.join(&file))?);
            self.out = Some(out);
            self.cur = Some(SegmentMeta {
                file,
                events: 0,
                bytes: 0,
                t_first: at.as_micros(),
                t_last: at.as_micros(),
            });
        }
        // Both halves were just ensured; stay panic-free regardless.
        let (Some(out), Some(cur)) = (self.out.as_mut(), self.cur.as_mut()) else {
            return Err(io::Error::other("spill sink lost its open segment"));
        };
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        cur.events += 1;
        cur.bytes += line_bytes;
        cur.t_last = at.as_micros();
        Ok(())
    }

    /// Closes the last segment, writes `manifest.json`, and returns the
    /// manifest. Surfaces the first deferred I/O error instead.
    pub fn finish(mut self) -> io::Result<SpillManifest> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.roll()?;
        let manifest = SpillManifest {
            total_events: self.segments.iter().map(|s| s.events).sum(),
            total_bytes: self.segments.iter().map(|s| s.bytes).sum(),
            segments: std::mem::take(&mut self.segments),
        };
        fs::write(self.dir.join(MANIFEST_FILE), render_manifest(&manifest))?;
        Ok(manifest)
    }
}

impl Drop for SpillSink {
    fn drop(&mut self) {
        if let Some(e) = self.error.take() {
            eprintln!("spill sink dropped with unreported write error: {e}");
        }
        if let Some(out) = self.out.as_mut() {
            if let Err(e) = out.flush() {
                eprintln!("spill sink flush on drop failed: {e}");
            }
            eprintln!(
                "spill sink dropped without finish(): {} has no manifest",
                self.dir.display()
            );
        }
    }
}

impl EventSink for SpillSink {
    fn record(&mut self, at: SimTime, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event_to_json(at, event);
        if let Err(e) = self.write_line(at, &line) {
            self.error = Some(e);
        }
    }
}

/// Renders the manifest with fixed field order (`version`, `segments`,
/// `total_events`, `total_bytes`); all values are unsigned integers or
/// plain file names, so no escaping is needed.
fn render_manifest(m: &SpillManifest) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{{\"version\":{MANIFEST_VERSION},\"segments\":[");
    for (i, seg) in m.segments.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"file\":\"{}\",\"events\":{},\"bytes\":{},\"t_first\":{},\"t_last\":{}}}",
            seg.file, seg.events, seg.bytes, seg.t_first, seg.t_last
        );
    }
    let _ = write!(
        s,
        "],\"total_events\":{},\"total_bytes\":{}}}",
        m.total_events, m.total_bytes
    );
    s.push('\n');
    s
}

/// Reads `manifest.json` in `dir` and cross-checks every claim against
/// the segment files: existence, exact byte size, line count, first and
/// last timestamps, per-segment and cross-segment timestamp order, and
/// the totals. Returns the parsed manifest.
///
/// # Errors
///
/// A human-readable description of the first mismatch.
pub fn validate_spill(dir: &Path) -> Result<SpillManifest, String> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let text = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let manifest = parse_manifest(&text)?;
    let mut prev_last: Option<u64> = None;
    for (i, seg) in manifest.segments.iter().enumerate() {
        let want = format!("segment-{i:06}.jsonl");
        if seg.file != want {
            return Err(format!(
                "segment {i} is named {:?}, want {want:?}",
                seg.file
            ));
        }
        let path = dir.join(&seg.file);
        let data = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if data.len() as u64 != seg.bytes {
            return Err(format!(
                "{}: {} bytes on disk, manifest says {}",
                seg.file,
                data.len(),
                seg.bytes
            ));
        }
        let mut events = 0u64;
        let mut first: Option<u64> = None;
        let mut last: Option<u64> = None;
        for line in data.lines() {
            let t = line_timestamp(line).map_err(|e| format!("{}: {e}", seg.file))?;
            if last.is_some_and(|prev| t < prev) {
                return Err(format!("{}: timestamps go backwards", seg.file));
            }
            first = first.or(Some(t));
            last = Some(t);
            events += 1;
        }
        if events != seg.events {
            return Err(format!(
                "{}: {events} events on disk, manifest says {}",
                seg.file, seg.events
            ));
        }
        if first != Some(seg.t_first) || last != Some(seg.t_last) {
            return Err(format!(
                "{}: timestamp span {first:?}..{last:?} disagrees with manifest {}..{}",
                seg.file, seg.t_first, seg.t_last
            ));
        }
        if prev_last.is_some_and(|p| seg.t_first < p) {
            return Err(format!(
                "{}: starts before the previous segment ends",
                seg.file
            ));
        }
        prev_last = Some(seg.t_last);
    }
    let (events, bytes) = manifest
        .segments
        .iter()
        .fold((0u64, 0u64), |(e, b), s| (e + s.events, b + s.bytes));
    if (events, bytes) != (manifest.total_events, manifest.total_bytes) {
        return Err(format!(
            "totals {}/{} disagree with segment sums {events}/{bytes}",
            manifest.total_events, manifest.total_bytes
        ));
    }
    Ok(manifest)
}

/// Extracts the `"t"` field of one JSONL line without a full parse.
fn line_timestamp(line: &str) -> Result<u64, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let t = v
        .get("t")
        .and_then(Json::as_f64)
        .ok_or_else(|| "line has no numeric \"t\"".to_string())?;
    if !(0.0..=u64::MAX as f64).contains(&t) || t.fract() != 0.0 {
        return Err("\"t\" is not an unsigned integer".to_string());
    }
    Ok(t as u64)
}

/// Parses a manifest document; structural/type errors are descriptive.
fn parse_manifest(text: &str) -> Result<SpillManifest, String> {
    let v = Json::parse(text).map_err(|e| format!("manifest: {e}"))?;
    let int = |v: &Json, key: &str| -> Result<u64, String> {
        let x = v
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("manifest: missing numeric \"{key}\""))?;
        if !(0.0..=u64::MAX as f64).contains(&x) || x.fract() != 0.0 {
            return Err(format!("manifest: \"{key}\" is not an unsigned integer"));
        }
        Ok(x as u64)
    };
    let version = int(&v, "version")?;
    if version != MANIFEST_VERSION {
        return Err(format!(
            "manifest: version {version} unsupported (want {MANIFEST_VERSION})"
        ));
    }
    let items = v
        .get("segments")
        .and_then(Json::as_array)
        .ok_or_else(|| "manifest: missing \"segments\" array".to_string())?;
    let mut segments = Vec::with_capacity(items.len());
    for item in items {
        segments.push(SegmentMeta {
            file: item
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| "manifest: segment missing \"file\"".to_string())?
                .to_string(),
            events: int(item, "events")?,
            bytes: int(item, "bytes")?,
            t_first: int(item, "t_first")?,
            t_last: int(item, "t_last")?,
        });
    }
    Ok(SpillManifest {
        segments,
        total_events: int(&v, "total_events")?,
        total_bytes: int(&v, "total_bytes")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique per-test scratch directory under the target dir, cleaned
    /// up on drop. Avoids any tempdir dependency.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir().join(format!("obs-spill-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn ev(job: u32) -> SimEvent {
        SimEvent::JobStarted { job }
    }

    #[test]
    fn spills_segments_and_manifest_that_validate() {
        let scratch = Scratch::new("roll");
        let mut sink = SpillSink::create(SpillConfig {
            dir: scratch.0.clone(),
            max_segment_bytes: 90,
        })
        .unwrap();
        // Each line is ~36-41 bytes, so 90-byte segments hold two events.
        for i in 0..5u32 {
            sink.record(SimTime::from_secs(i as u64), &ev(i));
        }
        let manifest = sink.finish().unwrap();
        assert_eq!(manifest.total_events, 5);
        assert_eq!(manifest.segments.len(), 3, "{manifest:?}");
        assert_eq!(manifest.segments[0].file, "segment-000000.jsonl");
        assert_eq!(manifest.segments[0].events, 2);
        assert_eq!(manifest.segments[2].events, 1);
        assert_eq!(manifest.segments[0].t_first, 0);
        assert_eq!(manifest.segments[2].t_last, 4_000_000);
        let validated = validate_spill(&scratch.0).unwrap();
        assert_eq!(validated, manifest);
    }

    #[test]
    fn oversized_line_still_lands_in_its_own_segment() {
        let scratch = Scratch::new("oversize");
        let mut sink = SpillSink::create(SpillConfig {
            dir: scratch.0.clone(),
            max_segment_bytes: 1,
        })
        .unwrap();
        sink.record(SimTime::ZERO, &ev(0));
        sink.record(SimTime::from_secs(1), &ev(1));
        let manifest = sink.finish().unwrap();
        assert_eq!(manifest.segments.len(), 2);
        assert_eq!(manifest.total_events, 2);
        validate_spill(&scratch.0).unwrap();
    }

    #[test]
    fn empty_run_writes_manifest_with_no_segments() {
        let scratch = Scratch::new("empty");
        let sink = SpillSink::create(SpillConfig {
            dir: scratch.0.clone(),
            max_segment_bytes: 1024,
        })
        .unwrap();
        let manifest = sink.finish().unwrap();
        assert_eq!(manifest, SpillManifest::default());
        assert_eq!(validate_spill(&scratch.0).unwrap(), manifest);
    }

    #[test]
    fn validation_catches_tampering() {
        let scratch = Scratch::new("tamper");
        let mut sink = SpillSink::create(SpillConfig {
            dir: scratch.0.clone(),
            max_segment_bytes: 1024,
        })
        .unwrap();
        for i in 0..3u32 {
            sink.record(SimTime::from_secs(i as u64), &ev(i));
        }
        sink.finish().unwrap();
        // Truncate the segment behind the manifest's back.
        let seg = scratch.0.join("segment-000000.jsonl");
        let data = fs::read_to_string(&seg).unwrap();
        let shorter: String = data.lines().take(2).map(|l| format!("{l}\n")).collect();
        fs::write(&seg, shorter).unwrap();
        let err = validate_spill(&scratch.0).unwrap_err();
        assert!(err.contains("bytes"), "{err}");
        // A missing manifest (crashed run) is rejected outright.
        fs::remove_file(scratch.0.join(MANIFEST_FILE)).unwrap();
        assert!(validate_spill(&scratch.0).is_err());
    }
}
