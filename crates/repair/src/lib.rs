//! `repair` — node-failure recovery for erasure-coded block stores.
//!
//! Degraded reads (the paper's subject) serve *reads* while a node is
//! down; eventually the cluster must *repair* — re-create every lost
//! block on surviving nodes so the stripe regains full redundancy. This
//! crate plans and simulates that process:
//!
//! * [`RepairPlan::plan`] chooses, for every lost block (native and
//!   parity), a replacement node and the `k` surviving source blocks its
//!   reconstruction downloads — the conventional repair that moves `k`
//!   blocks per lost block (the paper's footnote 1 baseline);
//! * [`simulate`] executes the plan on the [`netsim`] fluid network with
//!   bounded parallelism (as HDFS throttles concurrent reconstructions)
//!   and reports makespan and traffic.
//!
//! # Example
//!
//! ```
//! use cluster::{ClusterState, FailureScenario, Topology};
//! use ecstore::{placement::RackAwarePlacement, BlockStore, StripeLayout};
//! use erasure::CodeParams;
//! use netsim::NetConfig;
//! use repair::{simulate, RepairPlan};
//! use simkit::SimRng;
//!
//! let topo = Topology::homogeneous(2, 3, 2, 1);
//! let layout = StripeLayout::new(CodeParams::new(4, 2).unwrap(), 12).unwrap();
//! let mut rng = SimRng::seed_from_u64(1);
//! let store = BlockStore::place(&topo, layout, &RackAwarePlacement, &mut rng).unwrap();
//! let state = ClusterState::from_scenario(&topo, &FailureScenario::nodes([topo.node(0)]));
//!
//! let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
//! let report = simulate(&plan, &topo, NetConfig::gigabit(), 64 * 1024 * 1024, 4);
//! assert!(report.makespan.as_secs_f64() > 0.0);
//! ```

use std::collections::{BTreeMap, BTreeSet};

use cluster::{ClusterState, NodeId, Topology};
use ecstore::{BlockRef, BlockStore};
use netsim::{FlowId, FlowLogKind, NetConfig, Network};
use obs::event::{LinkSet, SimEvent};
use obs::sink::{EventSink, Recorder};
use simkit::time::{SimDuration, SimTime};
use simkit::SimRng;

/// Errors from repair planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// A stripe lost more blocks than the code tolerates.
    Unrecoverable {
        /// The unrecoverable stripe index.
        stripe: usize,
    },
    /// No live node can host a replacement without colliding with the
    /// stripe's surviving blocks.
    NoReplacementNode {
        /// The block that could not be re-homed.
        block: BlockRef,
    },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::Unrecoverable { stripe } => {
                write!(f, "stripe {stripe} is unrecoverable")
            }
            RepairError::NoReplacementNode { block } => {
                write!(f, "no live node can host the replacement of {block}")
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// One block reconstruction: rebuild `block` on `replacement` from the
/// `k` surviving `(source block, holder)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairTask {
    /// The lost block being re-created.
    pub block: BlockRef,
    /// The live node that will host the rebuilt block.
    pub replacement: NodeId,
    /// Source blocks to download (`k` of them; ones already on the
    /// replacement node cost no network transfer).
    pub sources: Vec<(BlockRef, NodeId)>,
}

impl RepairTask {
    /// Sources that require a network transfer.
    pub fn network_sources(&self) -> impl Iterator<Item = (BlockRef, NodeId)> + '_ {
        let replacement = self.replacement;
        self.sources
            .iter()
            .copied()
            .filter(move |&(_, holder)| holder != replacement)
    }
}

/// A full-node repair plan: one task per lost block, ordered by stripe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    /// The reconstructions to perform.
    pub tasks: Vec<RepairTask>,
}

impl RepairPlan {
    /// Plans the repair of every lost block (native *and* parity) under
    /// the cluster state. Replacement nodes are the least-loaded live
    /// nodes not already holding a block of the same stripe (random
    /// tie-break); sources prefer the replacement's own blocks, then its
    /// rack, then remote survivors.
    ///
    /// # Errors
    ///
    /// Returns [`RepairError::Unrecoverable`] if any stripe lost more
    /// than `n − k` blocks, or [`RepairError::NoReplacementNode`] if the
    /// cluster has too few live nodes to host a stripe's replacement.
    pub fn plan(
        store: &BlockStore,
        topo: &Topology,
        state: &ClusterState,
        rng: &mut SimRng,
    ) -> Result<RepairPlan, RepairError> {
        let layout = store.layout();
        let k = layout.params().k();
        // Extra blocks assigned to each node during this plan, so load
        // spreads across replacements.
        let mut extra_load: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut tasks = Vec::new();
        for s in 0..layout.num_stripes() {
            let stripe = ecstore::StripeId(s as u32);
            let lost: Vec<BlockRef> = layout
                .stripe_blocks(stripe)
                .filter(|&b| !state.is_alive(store.node_of(b)))
                .collect();
            if lost.is_empty() {
                continue;
            }
            let survivors: Vec<(BlockRef, NodeId)> = store
                .survivors_of(stripe, state)
                .into_iter()
                .map(|(pos, node)| (BlockRef { stripe, pos }, node))
                .collect();
            if survivors.len() < k {
                return Err(RepairError::Unrecoverable { stripe: s });
            }
            // Nodes already carrying a block of this stripe (surviving
            // or re-homed earlier in this loop).
            let mut occupied: BTreeSet<NodeId> = survivors.iter().map(|&(_, n)| n).collect();
            for block in lost {
                let mut candidates: Vec<NodeId> = state
                    .alive_nodes()
                    .into_iter()
                    .filter(|n| !occupied.contains(n))
                    .collect();
                if candidates.is_empty() {
                    return Err(RepairError::NoReplacementNode { block });
                }
                rng.shuffle(&mut candidates);
                candidates.sort_by_key(|n| {
                    store.natives_on(*n).len() + extra_load.get(n).copied().unwrap_or(0)
                });
                let replacement = candidates[0];
                occupied.insert(replacement);
                *extra_load.entry(replacement).or_default() += 1;

                // Local-first source selection relative to the
                // replacement node.
                let rep_rack = topo.rack_of(replacement);
                let mut ordered = survivors.clone();
                rng.shuffle(&mut ordered);
                ordered.sort_by_key(|&(_, holder)| {
                    if holder == replacement {
                        0
                    } else if topo.rack_of(holder) == rep_rack {
                        1
                    } else {
                        2
                    }
                });
                ordered.truncate(k);
                tasks.push(RepairTask {
                    block,
                    replacement,
                    sources: ordered,
                });
            }
        }
        Ok(RepairPlan { tasks })
    }

    /// Total blocks that must cross the network.
    pub fn network_block_count(&self) -> usize {
        self.tasks.iter().map(|t| t.network_sources().count()).sum()
    }

    /// Network blocks whose transfer crosses racks.
    pub fn cross_rack_block_count(&self, topo: &Topology) -> usize {
        self.tasks
            .iter()
            .map(|t| {
                let rack = topo.rack_of(t.replacement);
                t.network_sources()
                    .filter(|&(_, holder)| topo.rack_of(holder) != rack)
                    .count()
            })
            .sum()
    }
}

/// Outcome of simulating a repair plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// Wall-clock of the whole repair.
    pub makespan: SimDuration,
    /// Bytes moved over the network.
    pub bytes_transferred: u64,
    /// Per-task completion durations, in plan order.
    pub task_durations: Vec<SimDuration>,
}

/// Converts one netsim flow-log entry into the trace vocabulary.
fn flow_log_event(entry: &netsim::FlowLogEntry) -> SimEvent {
    let flow = entry.flow.as_u64();
    match entry.kind {
        FlowLogKind::Started {
            src,
            dst,
            bytes,
            route,
        } => SimEvent::FlowStarted {
            flow,
            src: src as u32,
            dst: dst as u32,
            bytes,
            links: LinkSet::from_slice(route.as_slice()),
        },
        FlowLogKind::RateChanged { rate_bps } => SimEvent::FlowRate { flow, rate_bps },
        FlowLogKind::Finished { cancelled } => SimEvent::FlowFinished { flow, cancelled },
    }
}

/// Forwards any buffered flow-log entries of `net` into `rec`.
fn drain_flow_log(net: &mut Network, rec: &mut Recorder<'_>) {
    if rec.is_enabled() {
        for entry in net.take_flow_log() {
            rec.emit(entry.at, || flow_log_event(&entry));
        }
    }
}

/// Executes a plan on the fluid network: at most `parallelism` block
/// reconstructions in flight; each task opens its network-source flows
/// in parallel and completes when the last one lands.
///
/// # Panics
///
/// Panics if `parallelism` is zero.
pub fn simulate(
    plan: &RepairPlan,
    topo: &Topology,
    net_config: NetConfig,
    block_bytes: u64,
    parallelism: usize,
) -> RepairReport {
    simulate_inner(
        plan,
        topo,
        net_config,
        block_bytes,
        parallelism,
        &mut Recorder::off(),
    )
}

/// Like [`simulate`], but streams [`SimEvent`]s of the repair — node
/// failure/recovery bracketing, per-task start/finish, and every network
/// flow — into `sink`. `state` names the failed nodes; they are announced
/// as failed at time zero and recovered when the repair completes. The
/// returned report is identical to an untraced [`simulate`] run.
///
/// # Panics
///
/// Panics if `parallelism` is zero.
pub fn simulate_traced(
    plan: &RepairPlan,
    topo: &Topology,
    state: &ClusterState,
    net_config: NetConfig,
    block_bytes: u64,
    parallelism: usize,
    sink: &mut dyn EventSink,
) -> RepairReport {
    let mut rec = Recorder::on(sink);
    for node in topo.node_ids() {
        if !state.is_alive(node) {
            rec.emit(SimTime::ZERO, || SimEvent::NodeFailed { node: node.0 });
        }
    }
    let report = simulate_inner(plan, topo, net_config, block_bytes, parallelism, &mut rec);
    let end = SimTime::ZERO + report.makespan;
    for node in topo.node_ids() {
        if !state.is_alive(node) {
            rec.emit(end, || SimEvent::NodeRecovered { node: node.0 });
        }
    }
    report
}

fn simulate_inner(
    plan: &RepairPlan,
    topo: &Topology,
    net_config: NetConfig,
    block_bytes: u64,
    parallelism: usize,
    rec: &mut Recorder<'_>,
) -> RepairReport {
    assert!(parallelism > 0, "repair needs parallelism >= 1");
    let mut net = Network::new(&topo.rack_sizes(), net_config);
    if rec.is_enabled() {
        net.enable_flow_log();
    }
    let mut now = SimTime::ZERO;
    let mut next_task = 0usize;
    let mut inflight: BTreeMap<usize, usize> = BTreeMap::new(); // task -> pending flows
    let mut flow_task: BTreeMap<FlowId, usize> = BTreeMap::new();
    let mut durations = vec![SimDuration::ZERO; plan.tasks.len()];
    let mut started_at = vec![SimTime::ZERO; plan.tasks.len()];
    let mut bytes = 0u64;

    let start_task = |idx: usize,
                      now: SimTime,
                      net: &mut Network,
                      inflight: &mut BTreeMap<usize, usize>,
                      flow_task: &mut BTreeMap<FlowId, usize>,
                      bytes: &mut u64,
                      started_at: &mut Vec<SimTime>,
                      rec: &mut Recorder<'_>| {
        let task = &plan.tasks[idx];
        started_at[idx] = now;
        rec.emit(now, || SimEvent::RepairStarted {
            task: idx as u32,
            stripe: task.block.stripe.0,
            pos: task.block.pos as u32,
            replacement: task.replacement.0,
        });
        let mut pending = 0usize;
        for (_, holder) in task.network_sources() {
            let flow = net.start_flow(now, holder.index(), task.replacement.index(), block_bytes);
            flow_task.insert(flow, idx);
            *bytes += block_bytes;
            pending += 1;
        }
        inflight.insert(idx, pending);
        pending
    };

    // Prime the window.
    let mut zero_cost_done: Vec<usize> = Vec::new();
    while next_task < plan.tasks.len() && inflight.len() < parallelism {
        let pending = start_task(
            next_task,
            now,
            &mut net,
            &mut inflight,
            &mut flow_task,
            &mut bytes,
            &mut started_at,
            rec,
        );
        if pending == 0 {
            inflight.remove(&next_task);
            zero_cost_done.push(next_task);
            rec.emit(now, || SimEvent::RepairFinished {
                task: next_task as u32,
            });
        }
        next_task += 1;
    }
    drain_flow_log(&mut net, rec);
    // Drain the network, refilling the window as tasks finish.
    while !inflight.is_empty() {
        let t = net
            .next_completion()
            .expect("in-flight repair with no pending completion");
        now = t;
        for (flow, _) in net.drain_finished(now) {
            let idx = flow_task.remove(&flow).expect("flow has an owner");
            let pending = inflight.get_mut(&idx).expect("task inflight");
            *pending -= 1;
            if *pending == 0 {
                inflight.remove(&idx);
                durations[idx] = now.duration_since(started_at[idx]);
                rec.emit(now, || SimEvent::RepairFinished { task: idx as u32 });
                while next_task < plan.tasks.len() && inflight.len() < parallelism {
                    let pending = start_task(
                        next_task,
                        now,
                        &mut net,
                        &mut inflight,
                        &mut flow_task,
                        &mut bytes,
                        &mut started_at,
                        rec,
                    );
                    if pending == 0 {
                        inflight.remove(&next_task);
                        zero_cost_done.push(next_task);
                        rec.emit(now, || SimEvent::RepairFinished {
                            task: next_task as u32,
                        });
                    }
                    next_task += 1;
                }
            }
        }
        drain_flow_log(&mut net, rec);
    }
    debug_assert_eq!(next_task, plan.tasks.len());
    RepairReport {
        makespan: now.duration_since(SimTime::ZERO),
        bytes_transferred: bytes,
        task_durations: durations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::FailureScenario;
    use ecstore::placement::RackAwarePlacement;
    use ecstore::StripeLayout;
    use erasure::CodeParams;

    fn setup(failed: &[u32]) -> (Topology, BlockStore, ClusterState, SimRng) {
        let topo = Topology::homogeneous(3, 4, 2, 1);
        let layout = StripeLayout::new(CodeParams::new(6, 4).unwrap(), 120).unwrap();
        let mut rng = SimRng::seed_from_u64(17);
        let store = BlockStore::place(&topo, layout, &RackAwarePlacement, &mut rng).unwrap();
        let state = ClusterState::from_scenario(
            &topo,
            &FailureScenario::nodes(failed.iter().map(|&i| NodeId(i))),
        );
        (topo, store, state, rng)
    }

    #[test]
    fn plan_covers_every_lost_block() {
        let (topo, store, state, mut rng) = setup(&[0]);
        let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
        // Count lost blocks (native and parity) on node 0.
        let lost = store
            .layout()
            .blocks()
            .filter(|&b| store.node_of(b) == NodeId(0))
            .count();
        assert_eq!(plan.tasks.len(), lost);
        assert!(lost > 0);
        for task in &plan.tasks {
            assert!(state.is_alive(task.replacement));
            assert_eq!(task.sources.len(), 4, "k sources");
            for (src, holder) in &task.sources {
                assert!(state.is_alive(*holder));
                assert_eq!(src.stripe, task.block.stripe);
                assert_ne!(*src, task.block);
            }
        }
    }

    #[test]
    fn replacements_keep_stripe_blocks_distinct() {
        let (topo, store, state, mut rng) = setup(&[0, 5]);
        let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
        // Post-repair holder sets per stripe must be distinct.
        let mut holders: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        for s in 0..store.layout().num_stripes() {
            let stripe = ecstore::StripeId(s as u32);
            for (_, node) in store.survivors_of(stripe, &state) {
                holders.entry(s as u32).or_default().push(node);
            }
        }
        for task in &plan.tasks {
            holders
                .entry(task.block.stripe.0)
                .or_default()
                .push(task.replacement);
        }
        for (stripe, mut nodes) in holders {
            let n = nodes.len();
            nodes.sort();
            nodes.dedup();
            assert_eq!(
                nodes.len(),
                n,
                "stripe {stripe} re-uses a node after repair"
            );
        }
    }

    #[test]
    fn unrecoverable_stripes_are_reported() {
        // Fail enough nodes that some (6,4) stripe keeps < 4 survivors.
        let (topo, store, state, mut rng) = setup(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let err = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap_err();
        assert!(matches!(err, RepairError::Unrecoverable { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn simulation_moves_k_blocks_per_loss() {
        let (topo, store, state, mut rng) = setup(&[0]);
        let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
        let block_bytes = 64 * 1024 * 1024u64;
        let report = simulate(&plan, &topo, NetConfig::gigabit(), block_bytes, 4);
        assert_eq!(
            report.bytes_transferred,
            plan.network_block_count() as u64 * block_bytes
        );
        // Conventional repair moves ~k blocks per lost block.
        assert!(plan.network_block_count() <= plan.tasks.len() * 4);
        assert!(plan.network_block_count() >= plan.tasks.len() * 3);
        assert_eq!(report.task_durations.len(), plan.tasks.len());
        assert!(report.makespan > SimDuration::ZERO);
    }

    #[test]
    fn more_parallelism_is_not_slower_much() {
        let (topo, store, state, mut rng) = setup(&[0]);
        let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
        let bb = 64 * 1024 * 1024u64;
        let serial = simulate(&plan, &topo, NetConfig::gigabit(), bb, 1);
        let wide = simulate(&plan, &topo, NetConfig::gigabit(), bb, 8);
        assert!(
            wide.makespan <= serial.makespan,
            "parallel repair slower: {} vs {}",
            wide.makespan,
            serial.makespan
        );
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let (topo, store, state, _) = setup(&[0]);
        let a = RepairPlan::plan(&store, &topo, &state, &mut SimRng::seed_from_u64(3)).unwrap();
        let b = RepairPlan::plan(&store, &topo, &state, &mut SimRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cross_rack_accounting_is_bounded() {
        let (topo, store, state, mut rng) = setup(&[0]);
        let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
        assert!(plan.cross_rack_block_count(&topo) <= plan.network_block_count());
    }

    #[test]
    fn traced_simulation_matches_untraced() {
        use obs::sink::VecSink;

        let (topo, store, state, mut rng) = setup(&[0]);
        let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
        let bb = 64 * 1024 * 1024u64;
        let plain = simulate(&plan, &topo, NetConfig::gigabit(), bb, 4);
        let mut sink = VecSink::new();
        let traced = simulate_traced(&plan, &topo, &state, NetConfig::gigabit(), bb, 4, &mut sink);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");

        let count =
            |pred: &dyn Fn(&SimEvent) -> bool| sink.events.iter().filter(|(_, e)| pred(e)).count();
        // One failed node, bracketed by failure at t=0 and recovery at
        // the makespan.
        assert_eq!(count(&|e| matches!(e, SimEvent::NodeFailed { .. })), 1);
        assert_eq!(count(&|e| matches!(e, SimEvent::NodeRecovered { .. })), 1);
        assert_eq!(sink.events[0].0, SimTime::ZERO);
        let (last_at, last) = sink.events.last().unwrap();
        assert!(matches!(last, SimEvent::NodeRecovered { .. }));
        assert_eq!(*last_at, SimTime::ZERO + plain.makespan);
        // Every repair task starts and finishes exactly once.
        assert_eq!(
            count(&|e| matches!(e, SimEvent::RepairStarted { .. })),
            plan.tasks.len()
        );
        assert_eq!(
            count(&|e| matches!(e, SimEvent::RepairFinished { .. })),
            plan.tasks.len()
        );
        // One flow per network source; all complete, none cancelled.
        assert_eq!(
            count(&|e| matches!(e, SimEvent::FlowStarted { .. })),
            plan.network_block_count()
        );
        assert_eq!(
            count(&|e| matches!(
                e,
                SimEvent::FlowFinished {
                    cancelled: false,
                    ..
                }
            )),
            plan.network_block_count()
        );
        // Timestamps are globally non-decreasing.
        for pair in sink.events.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }
}
