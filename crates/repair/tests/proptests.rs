//! Property-based tests for repair planning and simulation over
//! randomized clusters and failure sets.

use cluster::{ClusterState, FailureScenario, NodeId, Topology};
use ecstore::placement::RackAwarePlacement;
use ecstore::{BlockStore, StripeLayout};
use erasure::CodeParams;
use netsim::NetConfig;
use proptest::prelude::*;
use repair::{simulate, RepairPlan};
use simkit::SimRng;
use std::collections::HashSet;

#[derive(Debug, Clone)]
struct Setup {
    racks: usize,
    nodes_per_rack: usize,
    stripes: usize,
    victims: Vec<usize>,
    seed: u64,
}

fn setup() -> impl Strategy<Value = Setup> {
    (
        2usize..=4,
        3usize..=5,
        1usize..=8,
        proptest::collection::btree_set(0usize..20, 1..=2),
        any::<u64>(),
    )
        .prop_map(|(racks, nodes_per_rack, stripes, victims, seed)| Setup {
            racks,
            nodes_per_rack,
            stripes,
            victims: victims
                .into_iter()
                .map(|v| v % (racks * nodes_per_rack))
                .collect::<HashSet<_>>()
                .into_iter()
                .collect(),
            seed,
        })
}

fn build(s: &Setup) -> (Topology, BlockStore, ClusterState, SimRng) {
    // Parity 2 tolerates the at-most-2 victims the strategy produces;
    // the stripe width must satisfy the rack constraint n <= racks * 2,
    // so two-rack clusters use (4,2) and wider ones (6,4).
    let (n, k) = if s.racks >= 3 { (6, 4) } else { (4, 2) };
    let topo = Topology::homogeneous(s.racks, s.nodes_per_rack, 2, 1);
    let layout = StripeLayout::new(CodeParams::new(n, k).unwrap(), s.stripes * k).unwrap();
    let mut rng = SimRng::seed_from_u64(s.seed);
    let store = BlockStore::place(&topo, layout, &RackAwarePlacement, &mut rng).unwrap();
    let state = ClusterState::from_scenario(
        &topo,
        &FailureScenario::nodes(s.victims.iter().map(|&v| NodeId(v as u32))),
    );
    (topo, store, state, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn plans_cover_all_losses_and_respect_distinctness(s in setup()) {
        let (topo, store, state, mut rng) = build(&s);
        let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
        // One task per lost block (native and parity).
        let lost: Vec<_> = store
            .layout()
            .blocks()
            .filter(|&b| !state.is_alive(store.node_of(b)))
            .collect();
        prop_assert_eq!(plan.tasks.len(), lost.len());
        let planned: HashSet<_> = plan.tasks.iter().map(|t| t.block).collect();
        prop_assert_eq!(planned.len(), lost.len(), "duplicate repair targets");
        for b in &lost {
            prop_assert!(planned.contains(b), "lost block {} unplanned", b);
        }
        // Replacements are live and post-repair stripes use distinct nodes.
        for stripe in 0..store.layout().num_stripes() {
            let stripe_id = ecstore::StripeId(stripe as u32);
            let mut holders: Vec<NodeId> = store
                .survivors_of(stripe_id, &state)
                .into_iter()
                .map(|(_, n)| n)
                .collect();
            for t in plan.tasks.iter().filter(|t| t.block.stripe == stripe_id) {
                prop_assert!(state.is_alive(t.replacement));
                holders.push(t.replacement);
            }
            let total = holders.len();
            let mut uniq = holders;
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), total, "stripe {} reuses a node post-repair", stripe);
        }
        // Sources are live stripe members, k of them, never the target.
        let k = store.layout().params().k();
        for t in &plan.tasks {
            prop_assert_eq!(t.sources.len(), k);
            for (src, holder) in &t.sources {
                prop_assert!(state.is_alive(*holder));
                prop_assert_eq!(src.stripe, t.block.stripe);
                prop_assert_ne!(*src, t.block);
            }
        }
    }

    #[test]
    fn simulation_accounts_bytes_and_terminates(s in setup()) {
        let (topo, store, state, mut rng) = build(&s);
        let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
        if plan.tasks.is_empty() {
            return Ok(());
        }
        let block_bytes = 4 * 1024 * 1024u64;
        for parallelism in [1usize, 3, 16] {
            let report = simulate(&plan, &topo, NetConfig::gigabit(), block_bytes, parallelism);
            prop_assert_eq!(
                report.bytes_transferred,
                plan.network_block_count() as u64 * block_bytes
            );
            prop_assert_eq!(report.task_durations.len(), plan.tasks.len());
            // Tasks with at least one network source take nonzero time.
            for (t, d) in plan.tasks.iter().zip(&report.task_durations) {
                if t.network_sources().count() > 0 {
                    prop_assert!(d.as_micros() > 0);
                }
            }
        }
    }

    #[test]
    fn wider_parallelism_never_slows_repair(s in setup()) {
        let (topo, store, state, mut rng) = build(&s);
        let plan = RepairPlan::plan(&store, &topo, &state, &mut rng).unwrap();
        if plan.tasks.len() < 2 {
            return Ok(());
        }
        let bb = 8 * 1024 * 1024u64;
        let serial = simulate(&plan, &topo, NetConfig::gigabit(), bb, 1);
        let wide = simulate(&plan, &topo, NetConfig::gigabit(), bb, plan.tasks.len());
        prop_assert!(
            wide.makespan <= serial.makespan,
            "parallel {} > serial {}",
            wide.makespan,
            serial.makespan
        );
    }
}
