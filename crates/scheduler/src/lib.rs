//! `scheduler` — the paper's three MapReduce map-task scheduling
//! policies, implemented against [`mapreduce::sched::MapScheduler`]:
//!
//! * [`LocalityFirst`] — Hadoop's default (Algorithm 1): fill every free
//!   slot with local tasks, then remote tasks, and only then degraded
//!   tasks. In failure mode all degraded tasks therefore pile up at the
//!   end of the map phase and compete for cross-rack bandwidth.
//! * [`DegradedFirst::basic`] — Algorithm 2: before the locality pass,
//!   launch **at most one** degraded task per heartbeat, and only while
//!   the launched-degraded fraction `m_d / M_d` is not ahead of the
//!   overall launched fraction `m / M`. This paces degraded tasks evenly
//!   across the map phase.
//! * [`DegradedFirst::enhanced`] — Algorithm 3: adds *locality
//!   preservation* (don't give degraded work to slaves with
//!   above-average local backlog, `ASSIGNTOSLAVE`) and *rack awareness*
//!   (don't send another degraded task to a rack whose previous degraded
//!   read is likely still in flight, `ASSIGNTORACK`).
//!
//! # Example
//!
//! ```
//! use scheduler::{DegradedFirst, LocalityFirst};
//! use mapreduce::sched::MapScheduler;
//!
//! assert_eq!(LocalityFirst::new().name(), "LF");
//! assert_eq!(DegradedFirst::basic().name(), "BDF");
//! assert_eq!(DegradedFirst::enhanced().name(), "EDF");
//! ```

use mapreduce::sched::{Heartbeat, MapScheduler};
use mapreduce::JobId;

/// Hadoop's default locality-first scheduling (Algorithm 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityFirst {
    _priv: (),
}

impl LocalityFirst {
    /// Creates the policy.
    pub fn new() -> LocalityFirst {
        LocalityFirst::default()
    }
}

impl MapScheduler for LocalityFirst {
    fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
        for job in hb.jobs() {
            while hb.free_map_slots() > 0 {
                if hb.take_node_local(job).is_some()
                    || hb.take_rack_local(job).is_some()
                    || hb.take_remote(job).is_some()
                    || hb.take_degraded(job).is_some()
                {
                    continue;
                }
                break;
            }
        }
    }

    fn name(&self) -> &'static str {
        "LF"
    }
}

/// Degraded-first scheduling (Algorithms 2 and 3), with the enhanced
/// heuristics individually toggleable for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedFirst {
    locality_preservation: bool,
    rack_awareness: bool,
}

impl DegradedFirst {
    /// The basic policy (Algorithm 2): pacing only.
    pub fn basic() -> DegradedFirst {
        DegradedFirst {
            locality_preservation: false,
            rack_awareness: false,
        }
    }

    /// The enhanced policy (Algorithm 3): pacing + locality preservation
    /// + rack awareness.
    pub fn enhanced() -> DegradedFirst {
        DegradedFirst {
            locality_preservation: true,
            rack_awareness: true,
        }
    }

    /// An ablation variant with explicit heuristic toggles.
    pub fn with_heuristics(locality_preservation: bool, rack_awareness: bool) -> DegradedFirst {
        DegradedFirst {
            locality_preservation,
            rack_awareness,
        }
    }

    /// True if the pacing condition `m/M ≥ m_d/M_d` holds (compared in
    /// cross-multiplied integers, so no rounding).
    fn pace_allows(hb: &Heartbeat<'_>, job: JobId) -> bool {
        let m = hb.launched_maps(job);
        let md = hb.launched_degraded(job);
        let big_m = hb.total_maps(job);
        let big_md = hb.total_degraded(job);
        debug_assert!(big_md > 0, "pace check without degraded tasks");
        m * big_md >= md * big_m
    }

    /// `ASSIGNTOSLAVE` (Section IV-C): refuse slaves whose estimated
    /// local-task backlog exceeds the cluster average — they have no
    /// spare slots, and taking a degraded task would push their local
    /// blocks to other nodes as new remote tasks.
    ///
    /// (The paper's Algorithm 3 pseudo-code writes the comparison as
    /// `t_s < E[t_s] → false`, but its prose and Figure 8(a) discussion —
    /// "EDF assigns degraded tasks to the nodes that have low processing
    /// time for local tasks" — require the opposite; we follow the
    /// prose.)
    fn assign_to_slave(hb: &Heartbeat<'_>, job: JobId) -> bool {
        let t_s = hb.slave_local_work_secs(job, hb.slave());
        let mean = hb.mean_local_work_secs(job);
        t_s <= mean
    }

    /// `ASSIGNTORACK` (Section IV-C): refuse racks that received a
    /// degraded task both more recently than average and within the
    /// expected duration of one degraded read — its download is likely
    /// still holding the rack links.
    fn assign_to_rack(hb: &Heartbeat<'_>) -> bool {
        let t_r = hb.secs_since_degraded_assign(hb.rack());
        let mean = hb.mean_secs_since_degraded_assign();
        let threshold = hb.degraded_read_threshold_secs();
        t_r >= mean.min(threshold)
    }
}

impl MapScheduler for DegradedFirst {
    fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
        // At most one degraded task per heartbeat (Algorithm 2, line 4):
        // two degraded tasks on one slave would compete for its NIC.
        let mut degraded_assigned = false;
        for job in hb.jobs() {
            if !degraded_assigned
                && hb.free_map_slots() > 0
                && hb.has_degraded(job)
                && Self::pace_allows(hb, job)
                && (!self.locality_preservation || Self::assign_to_slave(hb, job))
                && (!self.rack_awareness || Self::assign_to_rack(hb))
                && hb.take_degraded(job).is_some()
            {
                degraded_assigned = true;
            }
            // Locality pass over the remaining free slots (never assigns
            // further degraded tasks).
            while hb.free_map_slots() > 0 {
                if hb.take_node_local(job).is_some()
                    || hb.take_rack_local(job).is_some()
                    || hb.take_remote(job).is_some()
                {
                    continue;
                }
                break;
            }
        }
    }

    fn name(&self) -> &'static str {
        match (self.locality_preservation, self.rack_awareness) {
            (false, false) => "BDF",
            (true, true) => "EDF",
            (true, false) => "BDF+locality",
            (false, true) => "BDF+rack",
        }
    }
}

/// Delay scheduling (Zaharia et al., EuroSys 2010 — the paper's
/// reference \[35\]) layered on locality-first: when the head job has no
/// node-local task for the reporting slave, the slave *waits* instead of
/// immediately stealing a non-local task, up to `max_wait` per job;
/// after that it falls back to rack-local → remote → degraded as LF
/// does. Included as an additional replication-era baseline: delay
/// scheduling protects locality but, like LF, still leaves all degraded
/// tasks to the end of the map phase.
#[derive(Debug, Clone)]
pub struct DelayScheduling {
    max_wait: simkit::time::SimDuration,
    /// Per job: when the job first had to skip a non-local assignment.
    skip_since: std::collections::BTreeMap<JobId, simkit::time::SimTime>,
}

impl DelayScheduling {
    /// Creates the policy with the given maximum per-job locality wait.
    pub fn new(max_wait: simkit::time::SimDuration) -> DelayScheduling {
        DelayScheduling {
            max_wait,
            skip_since: std::collections::BTreeMap::new(),
        }
    }
}

impl MapScheduler for DelayScheduling {
    fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
        for job in hb.jobs() {
            while hb.free_map_slots() > 0 {
                if hb.take_node_local(job).is_some() {
                    self.skip_since.remove(&job);
                    continue;
                }
                if !hb.has_normal(job) && !hb.has_degraded(job) {
                    break; // nothing left in this job
                }
                if hb.has_normal(job) {
                    // Non-local work available: wait for locality first.
                    let since = *self.skip_since.entry(job).or_insert_with(|| hb.now());
                    let waited = hb.now().saturating_duration_since(since);
                    if waited < self.max_wait {
                        break; // keep the slot idle this heartbeat
                    }
                    if hb.take_rack_local(job).is_some() || hb.take_remote(job).is_some() {
                        continue;
                    }
                }
                if hb.take_degraded(job).is_some() {
                    continue;
                }
                break;
            }
        }
    }

    fn name(&self) -> &'static str {
        "LF+delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{FailureScenario, Topology};
    use ecstore::placement::RackAwarePlacement;
    use erasure::CodeParams;
    use mapreduce::engine::{Engine, EngineConfig};
    use mapreduce::job::JobSpec;
    use mapreduce::{MapLocality, RunResult};
    use simkit::time::SimDuration;

    /// A small failure-mode cluster: 16 nodes / 4 racks, (8,6), 240
    /// native blocks, deterministic 10 s maps, map-only.
    fn run(
        scheduler: Box<dyn MapScheduler>,
        failure: FailureScenario,
        seed: u64,
        rack_mbps: u64,
    ) -> RunResult {
        let topo = Topology::homogeneous(4, 4, 2, 1);
        let cfg = EngineConfig {
            net: netsim_cfg(rack_mbps),
            ..EngineConfig::default()
        };
        let job = JobSpec::builder("bench")
            .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
            .map_only()
            .build();
        Engine::builder(topo.clone())
            .code(CodeParams::new(8, 6).unwrap(), 240)
            .placement(&RackAwarePlacement)
            .failure(failure)
            .config(cfg)
            .seed(seed)
            .job(job)
            .build()
            .unwrap()
            .run(scheduler)
            .unwrap()
    }

    fn netsim_cfg(rack_mbps: u64) -> netsim::NetConfig {
        netsim::NetConfig {
            node_bps: 1_000_000_000,
            rack_bps: rack_mbps * 1_000_000,
        }
    }

    fn single_failure(topo_node: u32) -> FailureScenario {
        FailureScenario::nodes([cluster::NodeId(topo_node)])
    }

    #[test]
    fn names() {
        assert_eq!(LocalityFirst::new().name(), "LF");
        assert_eq!(DegradedFirst::basic().name(), "BDF");
        assert_eq!(DegradedFirst::enhanced().name(), "EDF");
        assert_eq!(
            DegradedFirst::with_heuristics(true, false).name(),
            "BDF+locality"
        );
        assert_eq!(
            DegradedFirst::with_heuristics(false, true).name(),
            "BDF+rack"
        );
    }

    #[test]
    fn normal_mode_policies_are_identical() {
        // Without failures there are no degraded tasks and the
        // degraded-first policies reduce to locality-first exactly
        // (Section IV-A).
        let lf = run(
            Box::new(LocalityFirst::new()),
            FailureScenario::none(),
            3,
            1000,
        );
        let bdf = run(
            Box::new(DegradedFirst::basic()),
            FailureScenario::none(),
            3,
            1000,
        );
        let edf = run(
            Box::new(DegradedFirst::enhanced()),
            FailureScenario::none(),
            3,
            1000,
        );
        assert_eq!(lf, bdf);
        assert_eq!(lf, edf);
    }

    #[test]
    fn lf_launches_degraded_tasks_last() {
        let result = run(Box::new(LocalityFirst::new()), single_failure(0), 3, 100);
        let last_normal_assign = result
            .tasks
            .iter()
            .filter(|t| matches!(t.map_locality(), Some(l) if l != MapLocality::Degraded))
            .map(|t| t.assigned_at)
            .max()
            .unwrap();
        let first_degraded_assign = result
            .tasks
            .iter()
            .filter(|t| t.map_locality() == Some(MapLocality::Degraded))
            .map(|t| t.assigned_at)
            .min()
            .unwrap();
        // LF's first degraded launch happens only near the end of the
        // map phase.
        assert!(
            first_degraded_assign >= last_normal_assign,
            "LF launched a degraded task ({first_degraded_assign}) before the \
             last normal assignment ({last_normal_assign})"
        );
    }

    #[test]
    fn df_spreads_degraded_tasks_across_the_phase() {
        let result = run(Box::new(DegradedFirst::basic()), single_failure(0), 3, 100);
        // Compare against the map *launch* window: degraded reads extend
        // completions long past the final assignment.
        let phase_end = result
            .tasks
            .iter()
            .filter(|t| t.map_locality().is_some())
            .map(|t| t.assigned_at)
            .max()
            .unwrap();
        let assigns: Vec<f64> = result
            .tasks
            .iter()
            .filter(|t| t.map_locality() == Some(MapLocality::Degraded))
            .map(|t| t.assigned_at.as_secs_f64())
            .collect();
        assert!(!assigns.is_empty());
        let first = assigns.iter().cloned().fold(f64::INFINITY, f64::min);
        // The very first map assigned should (almost) always include a
        // degraded one: the pacing rule fires at m = m_d = 0.
        assert!(first < 5.0, "first degraded launch at {first}");
        // And launches are spread: the spread between first and last
        // degraded launch covers most of the map phase.
        let last = assigns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            last - first > phase_end.as_secs_f64() * 0.5,
            "degraded launches clustered: {first}..{last} of {phase_end}"
        );
    }

    #[test]
    fn degraded_first_beats_locality_first_in_failure_mode() {
        // The headline claim, on a constrained network (100 Mbps racks).
        for seed in [1, 2, 3] {
            let lf = run(Box::new(LocalityFirst::new()), single_failure(0), seed, 100);
            let bdf = run(
                Box::new(DegradedFirst::basic()),
                single_failure(0),
                seed,
                100,
            );
            let edf = run(
                Box::new(DegradedFirst::enhanced()),
                single_failure(0),
                seed,
                100,
            );
            let lf_rt = lf.jobs[0].runtime().as_secs_f64();
            let bdf_rt = bdf.jobs[0].runtime().as_secs_f64();
            let edf_rt = edf.jobs[0].runtime().as_secs_f64();
            assert!(
                bdf_rt < lf_rt,
                "seed {seed}: BDF {bdf_rt:.1}s not faster than LF {lf_rt:.1}s"
            );
            assert!(
                edf_rt < lf_rt,
                "seed {seed}: EDF {edf_rt:.1}s not faster than LF {lf_rt:.1}s"
            );
        }
    }

    #[test]
    fn degraded_first_cuts_degraded_read_time() {
        // Figure 8(b): BDF/EDF cut the degraded read time by ~80%+.
        let lf = run(Box::new(LocalityFirst::new()), single_failure(0), 5, 100);
        let edf = run(
            Box::new(DegradedFirst::enhanced()),
            single_failure(0),
            5,
            100,
        );
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let lf_read = mean(&lf.degraded_read_secs());
        let edf_read = mean(&edf.degraded_read_secs());
        assert!(
            edf_read < lf_read * 0.6,
            "EDF degraded read {edf_read:.1}s vs LF {lf_read:.1}s"
        );
    }

    #[test]
    fn edf_produces_fewer_remote_tasks_than_bdf() {
        // Figure 8(a): BDF steals locality; EDF preserves it.
        let mut bdf_remote = 0usize;
        let mut edf_remote = 0usize;
        for seed in 1..6 {
            let bdf = run(
                Box::new(DegradedFirst::basic()),
                single_failure(0),
                seed,
                100,
            );
            let edf = run(
                Box::new(DegradedFirst::enhanced()),
                single_failure(0),
                seed,
                100,
            );
            bdf_remote +=
                bdf.map_count(MapLocality::Remote) + bdf.map_count(MapLocality::RackLocal);
            edf_remote +=
                edf.map_count(MapLocality::Remote) + edf.map_count(MapLocality::RackLocal);
        }
        assert!(
            edf_remote <= bdf_remote,
            "EDF non-local {edf_remote} > BDF non-local {bdf_remote}"
        );
    }

    #[test]
    fn all_policies_complete_every_task() {
        for sched in [
            Box::new(LocalityFirst::new()) as Box<dyn MapScheduler>,
            Box::new(DegradedFirst::basic()),
            Box::new(DegradedFirst::enhanced()),
        ] {
            let result = run(sched, single_failure(1), 9, 250);
            assert_eq!(result.tasks.len(), 240);
            assert_eq!(result.jobs.len(), 1);
        }
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;
    use cluster::{FailureScenario, Topology};
    use ecstore::placement::RackAwarePlacement;
    use erasure::CodeParams;
    use mapreduce::engine::{Engine, EngineConfig};
    use mapreduce::job::JobSpec;
    use mapreduce::{MapLocality, RunResult};
    use simkit::time::SimDuration;

    fn run(scheduler: Box<dyn MapScheduler>, seed: u64) -> RunResult {
        let topo = Topology::homogeneous(4, 4, 2, 1);
        Engine::builder(topo.clone())
            .code(CodeParams::new(8, 6).unwrap(), 240)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes([topo.node(0)]))
            .config(EngineConfig::default())
            .seed(seed)
            .job(
                JobSpec::builder("delay")
                    .map_time(SimDuration::from_secs(10), SimDuration::from_secs(1))
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap()
            .run(scheduler)
            .unwrap()
    }

    #[test]
    fn delay_scheduling_completes_everything() {
        let result = run(Box::new(DelayScheduling::new(SimDuration::from_secs(6))), 1);
        assert_eq!(result.tasks.len(), 240);
        assert_eq!(DelayScheduling::new(SimDuration::ZERO).name(), "LF+delay");
    }

    #[test]
    fn delay_scheduling_improves_locality_over_lf() {
        let mut lf_non_local = 0usize;
        let mut delay_non_local = 0usize;
        for seed in 0..4 {
            let lf = run(Box::new(LocalityFirst::new()), seed);
            let delay = run(
                Box::new(DelayScheduling::new(SimDuration::from_secs(6))),
                seed,
            );
            lf_non_local +=
                lf.map_count(MapLocality::Remote) + lf.map_count(MapLocality::RackLocal);
            delay_non_local +=
                delay.map_count(MapLocality::Remote) + delay.map_count(MapLocality::RackLocal);
        }
        assert!(
            delay_non_local <= lf_non_local,
            "delay scheduling lost locality: {delay_non_local} > {lf_non_local}"
        );
    }

    #[test]
    fn zero_wait_behaves_like_locality_first() {
        for seed in 0..2 {
            let lf = run(Box::new(LocalityFirst::new()), seed);
            let delay = run(Box::new(DelayScheduling::new(SimDuration::ZERO)), seed);
            assert_eq!(lf, delay, "seed {seed}");
        }
    }
}
