//! Property-based tests of the scheduling policies over randomized
//! clusters: algorithmic invariants that must hold on every run.

use std::collections::HashMap;

use cluster::{FailureScenario, Topology};
use ecstore::placement::RackAwarePlacement;
use erasure::CodeParams;
use mapreduce::engine::{Engine, EngineConfig};
use mapreduce::job::JobSpec;
use mapreduce::sched::MapScheduler;
use mapreduce::{MapLocality, RunResult};
use proptest::prelude::*;
use scheduler::{DegradedFirst, LocalityFirst};
use simkit::time::SimDuration;

#[derive(Debug, Clone)]
struct Config {
    racks: usize,
    nodes_per_rack: usize,
    stripes: usize,
    map_secs: u64,
    fail_node: usize,
    seed: u64,
}

fn config() -> impl Strategy<Value = Config> {
    (
        2usize..=4,
        2usize..=4,
        3usize..=10,
        2u64..=12,
        any::<usize>(),
        any::<u64>(),
    )
        .prop_map(
            |(racks, nodes_per_rack, stripes, map_secs, fail, seed)| Config {
                racks,
                nodes_per_rack,
                stripes,
                map_secs,
                fail_node: fail % (racks * nodes_per_rack),
                seed,
            },
        )
}

fn run(cfg: &Config, scheduler: Box<dyn MapScheduler>, failure: FailureScenario) -> RunResult {
    let topo = Topology::homogeneous(cfg.racks, cfg.nodes_per_rack, 2, 1);
    Engine::builder(topo)
        .code(CodeParams::new(4, 2).unwrap(), cfg.stripes * 2)
        .placement(&RackAwarePlacement)
        .failure(failure)
        .config(EngineConfig {
            block_bytes: 16 * 1024 * 1024,
            net: netsim::NetConfig::uniform(200_000_000),
            ..EngineConfig::default()
        })
        .seed(cfg.seed)
        .job(
            JobSpec::builder("prop")
                .map_time(SimDuration::from_secs(cfg.map_secs), SimDuration::ZERO)
                .map_only()
                .build(),
        )
        .build()
        .expect("engine builds")
        .run(scheduler)
        .expect("run completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn lf_assigns_degraded_strictly_after_all_normal_tasks(cfg in config()) {
        let topo_node = cfg.fail_node;
        let result = run(
            &cfg,
            Box::new(LocalityFirst::new()),
            FailureScenario::nodes([cluster::NodeId(topo_node as u32)]),
        );
        let last_normal_assign = result
            .tasks
            .iter()
            .filter(|t| matches!(t.map_locality(), Some(l) if l != MapLocality::Degraded))
            .map(|t| t.assigned_at)
            .max();
        let first_degraded_assign = result
            .tasks
            .iter()
            .filter(|t| t.map_locality() == Some(MapLocality::Degraded))
            .map(|t| t.assigned_at)
            .min();
        if let (Some(last), Some(first)) = (last_normal_assign, first_degraded_assign) {
            prop_assert!(
                first >= last,
                "LF launched a degraded task at {first} before the last normal at {last}"
            );
        }
    }

    #[test]
    fn degraded_first_limits_one_degraded_per_heartbeat(cfg in config()) {
        for policy in [DegradedFirst::basic(), DegradedFirst::enhanced()] {
            let result = run(
                &cfg,
                Box::new(policy),
                FailureScenario::nodes([cluster::NodeId(cfg.fail_node as u32)]),
            );
            // Algorithm 2 line 4: a slave never receives two degraded
            // tasks in the same heartbeat, i.e. per (node, instant).
            let mut per_beat: HashMap<(cluster::NodeId, simkit::time::SimTime), usize> =
                HashMap::new();
            for t in result
                .tasks
                .iter()
                .filter(|t| t.map_locality() == Some(MapLocality::Degraded))
            {
                *per_beat.entry((t.node, t.assigned_at)).or_default() += 1;
            }
            for ((node, at), count) in per_beat {
                prop_assert!(
                    count <= 1,
                    "{node} got {count} degraded tasks in one heartbeat at {at}"
                );
            }
        }
    }

    #[test]
    fn degraded_launch_fractions_never_outpace_overall_fractions(cfg in config()) {
        // The pacing rule: at the instant the i-th degraded task (0-based)
        // is assigned, the fraction of all maps already launched is at
        // least i / M_d.
        let result = run(
            &cfg,
            Box::new(DegradedFirst::basic()),
            FailureScenario::nodes([cluster::NodeId(cfg.fail_node as u32)]),
        );
        let total_maps = result.tasks.iter().filter(|t| t.map_locality().is_some()).count();
        let mut assigns: Vec<(simkit::time::SimTime, bool)> = result
            .tasks
            .iter()
            .filter_map(|t| t.map_locality().map(|l| (t.assigned_at, l == MapLocality::Degraded)))
            .collect();
        let total_degraded = assigns.iter().filter(|&&(_, d)| d).count();
        if total_degraded == 0 {
            return Ok(());
        }
        // Degraded-before-normal within a tie matches the algorithm's
        // order (the degraded check runs before the locality pass).
        assigns.sort_by_key(|&(t, degraded)| (t, !degraded));
        let mut launched_degraded = 0usize;
        for (launched, (_, degraded)) in assigns.into_iter().enumerate() {
            if degraded {
                // m/M >= m_d/M_d at decision time (cross-multiplied).
                prop_assert!(
                    launched * total_degraded >= launched_degraded * total_maps,
                    "pacing violated: m={launched}/{total_maps}, m_d={launched_degraded}/{total_degraded}"
                );
                launched_degraded += 1;
            }
        }
    }

    #[test]
    fn normal_mode_reduces_to_locality_first(cfg in config()) {
        let lf = run(&cfg, Box::new(LocalityFirst::new()), FailureScenario::none());
        let bdf = run(&cfg, Box::new(DegradedFirst::basic()), FailureScenario::none());
        let edf = run(&cfg, Box::new(DegradedFirst::enhanced()), FailureScenario::none());
        prop_assert_eq!(&lf, &bdf, "BDF diverged from LF in normal mode");
        prop_assert_eq!(&lf, &edf, "EDF diverged from LF in normal mode");
    }

    #[test]
    fn every_policy_completes_all_tasks(cfg in config()) {
        for policy in [
            Box::new(LocalityFirst::new()) as Box<dyn MapScheduler>,
            Box::new(DegradedFirst::basic()),
            Box::new(DegradedFirst::enhanced()),
            Box::new(DegradedFirst::with_heuristics(true, false)),
            Box::new(DegradedFirst::with_heuristics(false, true)),
        ] {
            let result = run(
                &cfg,
                policy,
                FailureScenario::nodes([cluster::NodeId(cfg.fail_node as u32)]),
            );
            prop_assert_eq!(result.tasks.len(), cfg.stripes * 2);
        }
    }
}
