//! The event calendar: a priority queue of timestamped events with
//! deterministic tie-breaking and cancellation.
//!
//! Events that share a timestamp are delivered in the order they were
//! scheduled (FIFO), which makes simulation runs reproducible.
//!
//! Cancellation uses a generation-checked slab instead of a hash set:
//! each handle is a `(slot, generation)` pair, so `schedule`, `cancel`,
//! and `pop` never hash — liveness is one array compare. Cancelled
//! entries stay in the heap, but the top of the heap is eagerly purged
//! of dead entries after every mutation, so [`Calendar::peek_time`]
//! works on a shared reference.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can later be [cancelled].
///
/// A handle is a slab slot plus a per-slot generation; a handle goes
/// stale the moment its event fires or is cancelled, so acting on a
/// stale handle is always a detected no-op (generations would have to
/// wrap 2^32 times on one slot for a handle to falsely match — out of
/// reach for any realistic run).
///
/// [cancelled]: Calendar::cancel
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> EventId {
        EventId((gen as u64) << 32 | slot as u64)
    }

    fn slot(self) -> usize {
        self.0 as u32 as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The raw handle bits, mainly useful for logging.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    /// Global schedule order; breaks timestamp ties FIFO.
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ordered by time, then by schedule order. Payload never
        // participates in ordering.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl<E> Eq for Entry<E> {}

/// A deterministic event calendar.
///
/// # Example
///
/// ```
/// use simkit::calendar::Calendar;
/// use simkit::time::SimTime;
///
/// let mut cal = Calendar::new();
/// let a = cal.schedule(SimTime::from_secs(5), "a");
/// let _b = cal.schedule(SimTime::from_secs(5), "b");
/// cal.cancel(a);
/// let (_, _, payload) = cal.pop().unwrap();
/// assert_eq!(payload, "b");
/// assert!(cal.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Current generation of each slot. A heap entry is live iff its
    /// handle's generation matches its slot's.
    generations: Vec<u32>,
    /// Slots whose events fired or were cancelled, ready for reuse.
    free_slots: Vec<u32>,
    /// Live (scheduled, not cancelled) event count.
    live: usize,
    next_seq: u64,
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            generations: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery at `time` and returns a handle
    /// that can cancel it.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let slot = match self.free_slots.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.generations.len()).expect("slot count fits u32");
                self.generations.push(0);
                slot
            }
        };
        let id = EventId::new(slot, self.generations[slot as usize]);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.heap.push(Reverse(Entry {
            time,
            seq,
            id,
            payload,
        }));
        id
    }

    /// Retires an id's slot: invalidates every outstanding handle to it
    /// and queues it for reuse.
    fn retire(&mut self, id: EventId) {
        self.generations[id.slot()] = id.gen().wrapping_add(1);
        self.free_slots.push(id.slot() as u32);
        self.live -= 1;
    }

    /// Drops dead entries from the heap top so `peek`/`pop` see a live
    /// entry (or an empty heap).
    fn purge_top(&mut self) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.generations[entry.id.slot()] == entry.id.gen() {
                break;
            }
            self.heap.pop();
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// The entry stays in the heap and is dropped when it reaches the
    /// top. Returns `true` if the event was still pending, `false` if it
    /// had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let live = self
            .generations
            .get(id.slot())
            .is_some_and(|&gen| gen == id.gen());
        if live {
            self.retire(id);
            self.purge_top();
        }
        live
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        // The top is always live (see `purge_top`), so no skip loop here.
        let Reverse(entry) = self.heap.pop()?;
        debug_assert_eq!(self.generations[entry.id.slot()], entry.id.gen());
        self.retire(entry.id);
        self.purge_top();
        Some((entry.time, entry.id, entry.payload))
    }

    /// The timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(entry)| entry.time)
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Calendar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(3), 3u32);
        cal.schedule(SimTime::from_secs(1), 1);
        cal.schedule(SimTime::from_secs(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut cal = Calendar::new();
        for i in 0..100u32 {
            cal.schedule(SimTime::from_secs(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_tie_breaking_survives_slot_reuse() {
        // Slots freed by fired events are reused by later schedules; the
        // FIFO order must follow schedule time, not slot index.
        let mut cal = Calendar::new();
        for i in 0..10u32 {
            cal.schedule(SimTime::from_secs(1), i);
        }
        for _ in 0..10 {
            cal.pop().unwrap();
        }
        // These reuse the ten freed slots (in LIFO slot order).
        for i in 0..10u32 {
            cal.schedule(SimTime::from_secs(2), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        let b = cal.schedule(SimTime::from_secs(2), "b");
        assert_eq!(cal.len(), 2);
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a), "double cancel must be a no-op");
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().unwrap().2, "b");
        assert!(!cal.cancel(b), "cancelling a fired event must fail");
        assert!(cal.is_empty());
    }

    #[test]
    fn stale_handle_to_reused_slot_is_rejected() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        assert!(cal.cancel(a));
        // "b" reuses a's slot with a bumped generation.
        let b = cal.schedule(SimTime::from_secs(2), "b");
        assert_eq!(a.as_u64() as u32, b.as_u64() as u32, "slot reused");
        assert!(!cal.cancel(a), "stale handle must not cancel the new event");
        assert_eq!(cal.pop().unwrap().2, "b");
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(!cal.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        cal.schedule(SimTime::from_secs(2), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(cal.pop().unwrap().2, "b");
        assert_eq!(cal.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        let mut now = SimTime::ZERO;
        cal.schedule(now + SimDuration::from_secs(1), 1u32);
        let mut seen = Vec::new();
        while let Some((t, _, p)) = cal.pop() {
            assert!(t >= now, "time went backwards");
            now = t;
            seen.push(p);
            if p < 5 {
                cal.schedule(now + SimDuration::from_secs(1), p + 1);
            }
        }
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn large_volume_is_sorted() {
        // Deterministic pseudo-random insertion order.
        let mut cal = Calendar::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            cal.schedule(SimTime::from_micros(x % 1_000_000), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _, _)) = cal.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 10_000);
    }
}
