//! The event calendar: a priority queue of timestamped events with
//! deterministic tie-breaking and cancellation.
//!
//! Events that share a timestamp are delivered in the order they were
//! scheduled (FIFO), which makes simulation runs reproducible. Cancellation
//! is lazy: cancelled entries stay in the heap and are skipped on pop, so
//! both `schedule` and `cancel` are O(log n) amortized.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifies a scheduled event so it can later be [cancelled].
///
/// Ids are unique within one [`Calendar`] and never reused.
///
/// [cancelled]: Calendar::cancel
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number, mainly useful for logging.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Entry<E> {
    time: SimTime,
    id: EventId,
    payload: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ordered by time, then by schedule order. Payload never
        // participates in ordering.
        (self.time, self.id).cmp(&(other.time, other.id))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event calendar.
///
/// # Example
///
/// ```
/// use simkit::calendar::Calendar;
/// use simkit::time::SimTime;
///
/// let mut cal = Calendar::new();
/// let a = cal.schedule(SimTime::from_secs(5), "a");
/// let _b = cal.schedule(SimTime::from_secs(5), "b");
/// cal.cancel(a);
/// let (_, _, payload) = cal.pop().unwrap();
/// assert_eq!(payload, "b");
/// assert!(cal.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Ids currently in the heap and not cancelled.
    pending: HashSet<EventId>,
    next_id: u64,
}

impl<E: Eq> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_id: 0,
        }
    }

    /// Schedules `payload` for delivery at `time` and returns a handle
    /// that can cancel it.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.pending.insert(id);
        self.heap.push(Reverse(Entry { time, id, payload }));
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancellation is lazy: the entry stays in the heap and is skipped
    /// when reached. Returns `true` if the event was still pending,
    /// `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.pending.remove(&entry.id) {
                return Some((entry.time, entry.id, entry.payload));
            }
        }
        None
    }

    /// The timestamp of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.pending.contains(&entry.id) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl<E: Eq> Default for Calendar<E> {
    fn default() -> Self {
        Calendar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(3), 3u32);
        cal.schedule(SimTime::from_secs(1), 1);
        cal.schedule(SimTime::from_secs(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut cal = Calendar::new();
        for i in 0..100u32 {
            cal.schedule(SimTime::from_secs(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        let b = cal.schedule(SimTime::from_secs(2), "b");
        assert_eq!(cal.len(), 2);
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a), "double cancel must be a no-op");
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().unwrap().2, "b");
        assert!(!cal.cancel(b), "cancelling a fired event must fail");
        assert!(cal.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(!cal.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        cal.schedule(SimTime::from_secs(2), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(cal.pop().unwrap().2, "b");
        assert_eq!(cal.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        let mut now = SimTime::ZERO;
        cal.schedule(now + SimDuration::from_secs(1), 1u32);
        let mut seen = Vec::new();
        while let Some((t, _, p)) = cal.pop() {
            assert!(t >= now, "time went backwards");
            now = t;
            seen.push(p);
            if p < 5 {
                cal.schedule(now + SimDuration::from_secs(1), p + 1);
            }
        }
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn large_volume_is_sorted() {
        // Deterministic pseudo-random insertion order.
        let mut cal = Calendar::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            cal.schedule(SimTime::from_micros(x % 1_000_000), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _, _)) = cal.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 10_000);
    }
}
