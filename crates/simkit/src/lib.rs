//! `simkit` — a small, deterministic discrete event simulation toolkit.
//!
//! This crate provides the substrate on which the MapReduce simulator of the
//! degraded-first scheduling reproduction is built:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — integer-microsecond
//!   simulated time, so event ordering is exact and runs replay
//!   bit-identically for a given seed;
//! * [`calendar::Calendar`] — an event calendar (priority queue) with
//!   deterministic FIFO tie-breaking and O(log n) cancellation;
//! * [`rng::SimRng`] — a seeded random source with the distributions the
//!   paper uses (truncated normal task times, exponential job inter-arrivals);
//! * [`stats`] — online statistics, percentiles and the boxplot summaries
//!   used by every figure in the paper's evaluation;
//! * [`report`] — fixed-width table rendering for the figure/table
//!   regeneration binaries.
//!
//! # Example
//!
//! ```
//! use simkit::calendar::Calendar;
//! use simkit::time::{SimTime, SimDuration};
//!
//! let mut cal: Calendar<&str> = Calendar::new();
//! cal.schedule(SimTime::ZERO + SimDuration::from_secs(3), "heartbeat");
//! cal.schedule(SimTime::ZERO + SimDuration::from_secs(1), "flow done");
//! let (t, _, what) = cal.pop().unwrap();
//! assert_eq!(what, "flow done");
//! assert_eq!(t, SimTime::from_secs(1));
//! ```

pub mod calendar;
pub mod report;
pub mod rng;
pub mod stats;
pub mod time;

pub use calendar::{Calendar, EventId};
pub use rng::SimRng;
pub use stats::{Boxplot, OnlineStats, StatsError, Summary};
pub use time::{SimDuration, SimTime};
