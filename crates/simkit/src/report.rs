//! Fixed-width table rendering for the figure/table regeneration binaries.
//!
//! Every experiment binary in `crates/bench` prints its rows through a
//! [`Table`], so all reproduced figures share one textual format:
//!
//! ```text
//! | scheme   | LF median | EDF median | reduction |
//! |----------|-----------|------------|-----------|
//! | (8,6)    |     1.523 |      1.258 |     17.4% |
//! ```

use std::fmt::Write as _;

/// A simple left/right-aligned text table.
///
/// # Example
///
/// ```
/// use simkit::report::Table;
/// let mut t = Table::new(&["k", "v"]);
/// t.row(&["a".to_string(), "1".to_string()]);
/// let s = t.render();
/// assert!(s.contains("| a | 1 |"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown-style text. The first column is
    /// left-aligned; remaining columns are right-aligned (they are almost
    /// always numbers).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, " {:<width$} |", cell, width = widths[0]);
                } else {
                    let _ = write!(out, " {:>width$} |", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths[..ncols] {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders and prints to stdout with a title line.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.27` →
/// `"27.0%"`. Used for the paper's "reduction of normalized runtime"
/// figures.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a float with three decimals, the precision used for normalized
/// runtimes throughout the reproduction.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// The relative reduction from `base` to `improved`, e.g.
/// `reduction(40.0, 30.0) == 0.25` (the motivating example's 25% saving).
///
/// # Panics
///
/// Panics if `base` is not positive.
pub fn reduction(base: f64, improved: f64) -> f64 {
    assert!(base > 0.0, "reduction over non-positive base");
    (base - improved) / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(&["scheme", "LF", "EDF"]);
        t.row(&["(8,6)".into(), "1.5".into(), "1.2".into()]);
        t.row(&["(20,15)".into(), "1.9".into(), "1.3".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
        assert!(lines[0].contains("scheme"));
        assert!(lines[2].contains("(8,6)"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.254), "25.4%");
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(reduction(40.0, 30.0), 0.25);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
