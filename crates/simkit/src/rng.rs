//! Seeded randomness and the distributions the paper's evaluation uses.
//!
//! Everything random in a simulation run flows through one [`SimRng`]
//! seeded from the experiment seed, so a run is a pure function of its
//! configuration. The paper samples map/reduce task processing times from
//! normal distributions (e.g. N(20 s, 1 s) for map tasks in Section V-B)
//! and multi-job inter-arrival times from an exponential distribution with
//! mean 120 s.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random source for one simulation run.
///
/// # Example
///
/// ```
/// use simkit::rng::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second sample from Box–Muller.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; used to give each
    /// subsystem (placement, task times, arrivals) its own stream so that
    /// adding draws to one subsystem does not perturb another.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let seed = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimRng::seed_from_u64(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        self.inner.gen_range(0..bound)
    }

    /// A standard normal sample via Box–Muller (avoids a dependency on
    /// `rand_distr`, which is outside the allowed crate set).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        loop {
            let u1: f64 = self.inner.gen::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2: f64 = self.inner.gen::<f64>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.gauss_spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A normal task duration truncated below at `floor` (the simulator
    /// never produces non-positive processing times).
    pub fn normal_duration(
        &mut self,
        mean: SimDuration,
        std_dev: SimDuration,
        floor: SimDuration,
    ) -> SimDuration {
        let sample = self.normal(mean.as_secs_f64(), std_dev.as_secs_f64());
        let clamped = sample.max(floor.as_secs_f64());
        SimDuration::from_secs_f64(clamped)
    }

    /// An exponential sample with the given mean, via inverse CDF.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = loop {
            let u = self.inner.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// An exponential inter-arrival duration with the given mean.
    pub fn exponential_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// A Weibull sample with the given shape and scale, via inverse CDF
    /// (`scale · (-ln u)^(1/shape)`). Shape < 1 models infant-mortality
    /// failure processes, shape > 1 wear-out; shape = 1 degenerates to
    /// the exponential with mean `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` or `scale` is not positive and finite.
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(
            shape > 0.0 && shape.is_finite(),
            "weibull shape must be positive and finite"
        );
        assert!(
            scale > 0.0 && scale.is_finite(),
            "weibull scale must be positive and finite"
        );
        let u: f64 = loop {
            let u = self.inner.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        scale * (-u.ln()).powf(1.0 / shape)
    }

    /// Chooses `k` distinct elements of `items` uniformly at random,
    /// preserving no particular order.
    ///
    /// # Panics
    ///
    /// Panics if `k > items.len()`.
    pub fn choose_k<T: Clone>(&mut self, items: &[T], k: usize) -> Vec<T> {
        assert!(k <= items.len(), "choose_k: k={} > len={}", k, items.len());
        let mut idx: Vec<usize> = (0..items.len()).collect();
        idx.shuffle(&mut self.inner);
        idx.truncate(k);
        idx.into_iter().map(|i| items[i].clone()).collect()
    }

    /// Shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(1234);
        let mut b = SimRng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(1235);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(20.0, 1.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 20.0).abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(120.0)).sum::<f64>() / n as f64;
        assert!((mean - 120.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn weibull_shape_one_matches_exponential_mean() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.weibull(1.0, 120.0)).sum::<f64>() / n as f64;
        assert!((mean - 120.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn weibull_is_deterministic_and_positive() {
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        for _ in 0..100 {
            let x = a.weibull(1.5, 300.0);
            assert_eq!(x.to_bits(), b.weibull(1.5, 300.0).to_bits());
            assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "weibull shape")]
    fn weibull_rejects_bad_shape() {
        let _ = SimRng::seed_from_u64(0).weibull(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "weibull scale")]
    fn weibull_rejects_bad_scale() {
        let _ = SimRng::seed_from_u64(0).weibull(1.0, f64::NAN);
    }

    #[test]
    fn normal_duration_truncates() {
        let mut rng = SimRng::seed_from_u64(7);
        let floor = SimDuration::from_secs(1);
        for _ in 0..10_000 {
            // Wide std-dev so untruncated samples would often be negative.
            let d =
                rng.normal_duration(SimDuration::from_secs(2), SimDuration::from_secs(10), floor);
            assert!(d >= floor);
        }
    }

    #[test]
    fn choose_k_is_distinct_subset() {
        let mut rng = SimRng::seed_from_u64(3);
        let items: Vec<u32> = (0..20).collect();
        for k in 0..=items.len() {
            let mut chosen = rng.choose_k(&items, k);
            chosen.sort_unstable();
            chosen.dedup();
            assert_eq!(chosen.len(), k, "k={k} produced duplicates");
            assert!(chosen.iter().all(|c| items.contains(c)));
        }
    }

    #[test]
    fn choose_k_covers_all_elements_eventually() {
        let mut rng = SimRng::seed_from_u64(4);
        let items: Vec<u32> = (0..10).collect();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            for v in rng.choose_k(&items, 3) {
                seen.insert(v);
            }
        }
        assert_eq!(seen.len(), items.len());
    }

    #[test]
    #[should_panic(expected = "choose_k")]
    fn choose_k_rejects_oversized_k() {
        let mut rng = SimRng::seed_from_u64(0);
        let _ = rng.choose_k(&[1, 2, 3], 4);
    }
}
