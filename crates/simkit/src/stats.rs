//! Statistics helpers used by every experiment: online moments, quantiles,
//! and the five-number boxplot summaries the paper plots in Figures 7–9.

use std::fmt;

/// Why a batch summary could not be computed.
///
/// Samples come from arbitrary trace files and sweep closures, so a
/// single bad value must surface as an error the caller can report —
/// not abort the whole program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// The sample set was empty.
    Empty,
    /// A sample was NaN or infinite.
    NonFinite {
        /// Index of the offending sample in the input slice.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A percentile fraction was outside `[0, 1]` (or NaN).
    BadFraction {
        /// The offending fraction.
        p: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Empty => write!(f, "summary of empty sample"),
            StatsError::NonFinite { index, value } => {
                write!(f, "sample {index} is not finite ({value})")
            }
            StatsError::BadFraction { p } => {
                write!(f, "percentile fraction {p} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Returns the input unchanged, or the first non-finite sample as an
/// error.
fn check_finite(samples: &[f64]) -> Result<&[f64], StatsError> {
    match samples.iter().position(|x| !x.is_finite()) {
        Some(index) => Err(StatsError::NonFinite {
            index,
            value: samples[index],
        }),
        None => Ok(samples),
    }
}

/// Online mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use simkit::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean, or 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The sample variance (n−1 denominator), or 0 with fewer than two
    /// observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The smallest observation.
    ///
    /// # Panics
    ///
    /// Panics if no observations have been added.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty stats");
        self.min
    }

    /// The largest observation.
    ///
    /// # Panics
    ///
    /// Panics if no observations have been added.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty stats");
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// A batch summary of a sample: count, mean, standard deviation and the
/// quartiles. Produced by [`Summary::from_samples`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty sample and
    /// [`StatsError::NonFinite`] if any sample is NaN or infinite.
    pub fn from_samples(samples: &[f64]) -> Result<Summary, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        let mut sorted = check_finite(samples)?.to_vec();
        sorted.sort_by(f64::total_cmp);
        let stats: OnlineStats = sorted.iter().copied().collect();
        Ok(Summary {
            count: sorted.len(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: sorted[0],
            q1: percentile_sorted(&sorted, 0.25)?,
            median: percentile_sorted(&sorted, 0.50)?,
            q3: percentile_sorted(&sorted, 0.75)?,
            max: *sorted.last().expect("non-empty"),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// The boxplot rendering of a sample: five-number summary with whiskers at
/// 1.5·IQR and everything beyond flagged as outliers — the format of
/// Figures 7 and 8 in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Boxplot {
    /// Lower whisker: smallest sample ≥ Q1 − 1.5·IQR.
    pub whisker_low: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Upper whisker: largest sample ≤ Q3 + 1.5·IQR.
    pub whisker_high: f64,
    /// Samples outside the whiskers.
    pub outliers: Vec<f64>,
    /// Sample mean (the paper quotes mean reductions in the text).
    pub mean: f64,
}

impl Boxplot {
    /// Builds a boxplot summary of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty sample and
    /// [`StatsError::NonFinite`] if any sample is NaN or infinite.
    pub fn from_samples(samples: &[f64]) -> Result<Boxplot, StatsError> {
        let s = Summary::from_samples(samples)?;
        let iqr = s.q3 - s.q1;
        let lo_fence = s.q1 - 1.5 * iqr;
        let hi_fence = s.q3 + 1.5 * iqr;
        let mut whisker_low = f64::INFINITY;
        let mut whisker_high = f64::NEG_INFINITY;
        let mut outliers = Vec::new();
        for &x in samples {
            if x < lo_fence || x > hi_fence {
                outliers.push(x);
            } else {
                whisker_low = whisker_low.min(x);
                whisker_high = whisker_high.max(x);
            }
        }
        outliers.sort_by(f64::total_cmp);
        Ok(Boxplot {
            whisker_low,
            q1: s.q1,
            median: s.median,
            q3: s.q3,
            whisker_high,
            outliers,
            mean: s.mean,
        })
    }
}

impl fmt::Display for Boxplot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3} |{:.3} {:.3} {:.3}| {:.3}] mean={:.3} outliers={}",
            self.whisker_low,
            self.q1,
            self.median,
            self.q3,
            self.whisker_high,
            self.mean,
            self.outliers.len()
        )
    }
}

/// Linear-interpolated percentile of an already-sorted slice.
///
/// `p` is a fraction in `[0, 1]`.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty slice and
/// [`StatsError::BadFraction`] if `p` is outside `[0, 1]` or NaN.
/// Percentile requests come from trace files and CLI flags, so both
/// conditions must surface as reportable errors, not panics.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Result<f64, StatsError> {
    if sorted.is_empty() {
        return Err(StatsError::Empty);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::BadFraction { p });
    }
    if sorted.len() == 1 {
        return Ok(sorted[0]);
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Subbuckets per power-of-two octave in [`QuantileSketch`]. 64 linear
/// subbuckets bound the midpoint estimate's relative error by
/// `1 / (2 * 64)` ≈ 0.78%.
const SKETCH_SUB: usize = 64;
/// log2 of [`SKETCH_SUB`], for mantissa-bit extraction.
const SKETCH_SUB_BITS: u32 = 6;
/// Smallest bucketed exponent: values below `2^-20` (~1 µs for
/// second-valued samples) land in the dedicated small-value bucket.
const SKETCH_MIN_EXP: i32 = -20;
/// One-past-largest bucketed exponent: `2^30` s is ~34 years, beyond any
/// simulated horizon; larger values clamp into the top bucket.
const SKETCH_MAX_EXP: i32 = 30;
/// Fixed bucket count — the sketch's memory footprint is this many
/// `u64` counters regardless of how many samples are recorded.
const SKETCH_BUCKETS: usize = (SKETCH_MAX_EXP - SKETCH_MIN_EXP) as usize * SKETCH_SUB;

/// A deterministic, mergeable, fixed-memory quantile sketch.
///
/// Buckets are base-2 octaves split into [`SKETCH_SUB`] linear
/// subbuckets (HDR-histogram style), with boundaries derived from the
/// raw `f64` bit pattern — no `ln`/`log2` calls, so bucket assignment is
/// bit-identical on every platform. Memory is a fixed
/// [`SKETCH_BUCKETS`]-entry counter array (~25 KB) independent of the
/// sample count, and two sketches built from disjoint streams merge into
/// exactly the sketch of the concatenated stream.
///
/// Quantile estimates are bucket midpoints clamped to the observed
/// `[min, max]`, so for in-range positive samples the estimate is within
/// [`QuantileSketch::RELATIVE_ERROR`] of some sample at the requested
/// rank. Samples below `2^-20` report as `0.0` (absolute error < 1 µs
/// for second-valued data).
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    small_count: u64,
    total: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// Worst-case relative error of a quantile estimate for positive
    /// in-range samples: half a subbucket's relative width.
    pub const RELATIVE_ERROR: f64 = 1.0 / (2 * SKETCH_SUB) as f64;

    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            counts: vec![0; SKETCH_BUCKETS],
            small_count: 0,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Records one sample. Negative values clamp to the small-value
    /// bucket (the simulator's latencies are non-negative by
    /// construction).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonFinite`] for NaN or infinite samples.
    pub fn record(&mut self, x: f64) -> Result<(), StatsError> {
        if !x.is_finite() {
            return Err(StatsError::NonFinite { index: 0, value: x });
        }
        match Self::bucket_index(x) {
            Some(i) => self.counts[i] += 1,
            None => self.small_count += 1,
        }
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        Ok(())
    }

    /// Merges another sketch into this one. The result is identical to
    /// recording both streams into a single sketch.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.small_count += other.small_count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The bucket holding `x`, or `None` for the small-value bucket.
    fn bucket_index(x: f64) -> Option<usize> {
        if x < (2.0f64).powi(SKETCH_MIN_EXP) {
            return None;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        let sub = (bits >> (52 - SKETCH_SUB_BITS)) as usize & (SKETCH_SUB - 1);
        if exp >= SKETCH_MAX_EXP {
            return Some(SKETCH_BUCKETS - 1);
        }
        Some((exp - SKETCH_MIN_EXP) as usize * SKETCH_SUB + sub)
    }

    /// Midpoint of bucket `i`, the quantile estimate for samples in it.
    fn bucket_mid(i: usize) -> f64 {
        let exp = SKETCH_MIN_EXP + (i / SKETCH_SUB) as i32;
        let sub = (i % SKETCH_SUB) as f64;
        (2.0f64).powi(exp) * (1.0 + (sub + 0.5) / SKETCH_SUB as f64)
    }

    /// The estimated `p`-quantile.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty sketch and
    /// [`StatsError::BadFraction`] if `p` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if self.total == 0 {
            return Err(StatsError::Empty);
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::BadFraction { p });
        }
        // The 0-based rank the exact interpolated percentile centres on.
        let rank = (p * (self.total - 1) as f64).round() as u64;
        if rank < self.small_count {
            return Ok(0.0);
        }
        let mut seen = self.small_count;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                if i == SKETCH_BUCKETS - 1 {
                    // The top bucket also catches clamped overflow
                    // values; `max` is in it whenever the scan lands
                    // here (no higher bucket exists), and is a better
                    // representative than the midpoint.
                    return Ok(self.max);
                }
                return Ok(Self::bucket_mid(i).clamp(self.min, self.max));
            }
        }
        // Unreachable for a consistent sketch; fall back to the maximum.
        Ok(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let s: OnlineStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let seq: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..37].iter().copied().collect();
        let b: OnlineStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0).unwrap(), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.5).unwrap(), 3.0);
        assert_eq!(percentile_sorted(&sorted, 1.0).unwrap(), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.25).unwrap(), 2.0);
        assert_eq!(percentile_sorted(&sorted, 0.1).unwrap(), 1.4);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[7.0], 0.99).unwrap(), 7.0);
    }

    #[test]
    fn percentile_rejects_empty_and_bad_fraction() {
        assert_eq!(percentile_sorted(&[], 0.5), Err(StatsError::Empty));
        let err = percentile_sorted(&[1.0], 1.5).unwrap_err();
        assert!(matches!(err, StatsError::BadFraction { .. }));
        assert_eq!(err.to_string(), "percentile fraction 1.5 is outside [0, 1]");
        assert!(matches!(
            percentile_sorted(&[1.0], -0.1),
            Err(StatsError::BadFraction { .. })
        ));
        // NaN fails the range check too (contains() is false for NaN).
        assert!(matches!(
            percentile_sorted(&[1.0], f64::NAN),
            Err(StatsError::BadFraction { .. })
        ));
    }

    #[test]
    fn sketch_tracks_exact_percentiles_within_bound() {
        let mut sk = QuantileSketch::new();
        let mut samples: Vec<f64> = Vec::new();
        // A deterministic skewed sample spanning several octaves.
        for i in 0..2000u32 {
            let x = 0.01 * f64::from(i % 700 + 1) + f64::from(i % 13) * 3.0;
            sk.record(x).unwrap();
            samples.push(x);
        }
        samples.sort_by(f64::total_cmp);
        assert_eq!(sk.count(), 2000);
        for p in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            // The sketch estimates the sample at the rounded rank; its
            // bucket-midpoint answer must sit within the documented
            // relative error of that sample.
            let rank = (p * (samples.len() - 1) as f64).round() as usize;
            let exact = samples[rank];
            let approx = sk.quantile(p).unwrap();
            assert!(
                (approx - exact).abs() <= exact.abs() * QuantileSketch::RELATIVE_ERROR + 1e-12,
                "p={p}: approx {approx} vs exact {exact}"
            );
            // And it must also track the interpolated percentile closely.
            let interp = percentile_sorted(&samples, p).unwrap();
            assert!((approx - interp).abs() <= interp.abs() * 0.05 + 0.05);
        }
    }

    #[test]
    fn sketch_merge_equals_sequential() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut whole = QuantileSketch::new();
        for i in 0..500u32 {
            let x = f64::from(i) * 0.37 + 0.001;
            whole.record(x).unwrap();
            if i % 2 == 0 {
                a.record(x).unwrap();
            } else {
                b.record(x).unwrap();
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn sketch_edge_cases() {
        let empty = QuantileSketch::new();
        assert_eq!(empty.quantile(0.5), Err(StatsError::Empty));
        let mut sk = QuantileSketch::new();
        assert!(matches!(
            sk.record(f64::NAN),
            Err(StatsError::NonFinite { .. })
        ));
        sk.record(0.0).unwrap();
        sk.record(1e-9).unwrap(); // below 2^-20: small-value bucket
        sk.record(1e12).unwrap(); // above 2^30: clamps to top bucket
        assert_eq!(sk.count(), 3);
        assert_eq!(sk.quantile(0.0).unwrap(), 0.0);
        // The top-bucket midpoint clamps to the observed max.
        assert_eq!(sk.quantile(1.0).unwrap(), 1e12);
        assert!(matches!(
            sk.quantile(1.1),
            Err(StatsError::BadFraction { .. })
        ));
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut xs: Vec<f64> = (0..20).map(|i| 9.0 + 0.1 * i as f64).collect();
        xs.push(100.0); // way outside the fences
        let b = Boxplot::from_samples(&xs).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_high <= 10.9 + 1e-9);
        // 21 samples: the median is the 11th sorted value, 9.0 + 0.1*10.
        assert!((b.median - 10.0).abs() < 1e-9);
    }

    #[test]
    fn boxplot_no_outliers() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b = Boxplot::from_samples(&xs).unwrap();
        assert!(b.outliers.is_empty());
        assert_eq!(b.whisker_low, 0.0);
        assert_eq!(b.whisker_high, 29.0);
    }

    #[test]
    fn summary_rejects_empty() {
        let err = Summary::from_samples(&[]).unwrap_err();
        assert_eq!(err, StatsError::Empty);
        assert_eq!(err.to_string(), "summary of empty sample");
    }

    #[test]
    fn summary_rejects_non_finite() {
        let err = Summary::from_samples(&[1.0, f64::NAN, 3.0]).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { index: 1, .. }));
        assert_eq!(err.to_string(), "sample 1 is not finite (NaN)");
        let err = Boxplot::from_samples(&[f64::INFINITY]).unwrap_err();
        assert_eq!(err.to_string(), "sample 0 is not finite (inf)");
    }

    #[test]
    fn display_is_nonempty() {
        let b = Boxplot::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(!b.to_string().is_empty());
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(s.to_string().contains("mean"));
    }
}
