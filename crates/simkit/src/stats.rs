//! Statistics helpers used by every experiment: online moments, quantiles,
//! and the five-number boxplot summaries the paper plots in Figures 7–9.

use std::fmt;

/// Why a batch summary could not be computed.
///
/// Samples come from arbitrary trace files and sweep closures, so a
/// single bad value must surface as an error the caller can report —
/// not abort the whole program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// The sample set was empty.
    Empty,
    /// A sample was NaN or infinite.
    NonFinite {
        /// Index of the offending sample in the input slice.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Empty => write!(f, "summary of empty sample"),
            StatsError::NonFinite { index, value } => {
                write!(f, "sample {index} is not finite ({value})")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Returns the input unchanged, or the first non-finite sample as an
/// error.
fn check_finite(samples: &[f64]) -> Result<&[f64], StatsError> {
    match samples.iter().position(|x| !x.is_finite()) {
        Some(index) => Err(StatsError::NonFinite {
            index,
            value: samples[index],
        }),
        None => Ok(samples),
    }
}

/// Online mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use simkit::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean, or 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The sample variance (n−1 denominator), or 0 with fewer than two
    /// observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The smallest observation.
    ///
    /// # Panics
    ///
    /// Panics if no observations have been added.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty stats");
        self.min
    }

    /// The largest observation.
    ///
    /// # Panics
    ///
    /// Panics if no observations have been added.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty stats");
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// A batch summary of a sample: count, mean, standard deviation and the
/// quartiles. Produced by [`Summary::from_samples`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty sample and
    /// [`StatsError::NonFinite`] if any sample is NaN or infinite.
    pub fn from_samples(samples: &[f64]) -> Result<Summary, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        let mut sorted = check_finite(samples)?.to_vec();
        sorted.sort_by(f64::total_cmp);
        let stats: OnlineStats = sorted.iter().copied().collect();
        Ok(Summary {
            count: sorted.len(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: sorted[0],
            q1: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.50),
            q3: percentile_sorted(&sorted, 0.75),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// The boxplot rendering of a sample: five-number summary with whiskers at
/// 1.5·IQR and everything beyond flagged as outliers — the format of
/// Figures 7 and 8 in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Boxplot {
    /// Lower whisker: smallest sample ≥ Q1 − 1.5·IQR.
    pub whisker_low: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Upper whisker: largest sample ≤ Q3 + 1.5·IQR.
    pub whisker_high: f64,
    /// Samples outside the whiskers.
    pub outliers: Vec<f64>,
    /// Sample mean (the paper quotes mean reductions in the text).
    pub mean: f64,
}

impl Boxplot {
    /// Builds a boxplot summary of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty sample and
    /// [`StatsError::NonFinite`] if any sample is NaN or infinite.
    pub fn from_samples(samples: &[f64]) -> Result<Boxplot, StatsError> {
        let s = Summary::from_samples(samples)?;
        let iqr = s.q3 - s.q1;
        let lo_fence = s.q1 - 1.5 * iqr;
        let hi_fence = s.q3 + 1.5 * iqr;
        let mut whisker_low = f64::INFINITY;
        let mut whisker_high = f64::NEG_INFINITY;
        let mut outliers = Vec::new();
        for &x in samples {
            if x < lo_fence || x > hi_fence {
                outliers.push(x);
            } else {
                whisker_low = whisker_low.min(x);
                whisker_high = whisker_high.max(x);
            }
        }
        outliers.sort_by(f64::total_cmp);
        Ok(Boxplot {
            whisker_low,
            q1: s.q1,
            median: s.median,
            q3: s.q3,
            whisker_high,
            outliers,
            mean: s.mean,
        })
    }
}

impl fmt::Display for Boxplot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3} |{:.3} {:.3} {:.3}| {:.3}] mean={:.3} outliers={}",
            self.whisker_low,
            self.q1,
            self.median,
            self.q3,
            self.whisker_high,
            self.mean,
            self.outliers.len()
        )
    }
}

/// Linear-interpolated percentile of an already-sorted slice.
///
/// `p` is a fraction in `[0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&p), "percentile fraction {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let s: OnlineStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let seq: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..37].iter().copied().collect();
        let b: OnlineStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 3.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.25), 2.0);
        assert_eq!(percentile_sorted(&sorted, 0.1), 1.4);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut xs: Vec<f64> = (0..20).map(|i| 9.0 + 0.1 * i as f64).collect();
        xs.push(100.0); // way outside the fences
        let b = Boxplot::from_samples(&xs).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_high <= 10.9 + 1e-9);
        // 21 samples: the median is the 11th sorted value, 9.0 + 0.1*10.
        assert!((b.median - 10.0).abs() < 1e-9);
    }

    #[test]
    fn boxplot_no_outliers() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b = Boxplot::from_samples(&xs).unwrap();
        assert!(b.outliers.is_empty());
        assert_eq!(b.whisker_low, 0.0);
        assert_eq!(b.whisker_high, 29.0);
    }

    #[test]
    fn summary_rejects_empty() {
        let err = Summary::from_samples(&[]).unwrap_err();
        assert_eq!(err, StatsError::Empty);
        assert_eq!(err.to_string(), "summary of empty sample");
    }

    #[test]
    fn summary_rejects_non_finite() {
        let err = Summary::from_samples(&[1.0, f64::NAN, 3.0]).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { index: 1, .. }));
        assert_eq!(err.to_string(), "sample 1 is not finite (NaN)");
        let err = Boxplot::from_samples(&[f64::INFINITY]).unwrap_err();
        assert_eq!(err.to_string(), "sample 0 is not finite (inf)");
    }

    #[test]
    fn display_is_nonempty() {
        let b = Boxplot::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(!b.to_string().is_empty());
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(s.to_string().contains("mean"));
    }
}
