//! Simulated time as integer microseconds.
//!
//! All simulated clocks in this workspace use [`SimTime`] (a point in time)
//! and [`SimDuration`] (a span). Both are newtypes over `u64` microseconds.
//! Integer time keeps event ordering exact: two flows that finish at the
//! same instant compare equal on every platform, and the calendar's
//! sequence-number tie-breaker then yields a unique, reproducible order.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in simulated time, measured in microseconds since the start of
/// the simulation.
///
/// # Example
///
/// ```
/// use simkit::time::{SimTime, SimDuration};
/// let t = SimTime::from_secs(3) + SimDuration::from_millis(500);
/// assert_eq!(t.as_secs_f64(), 3.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Example
///
/// ```
/// use simkit::time::SimDuration;
/// let d = SimDuration::from_secs_f64(0.25) * 4;
/// assert_eq!(d, SimDuration::from_secs(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for events that are currently unreachable.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time point from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time point from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time point from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates a time point from fractional seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// This instant as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// The span from `other` to `self`, saturating to zero when `other`
    /// is later.
    pub fn saturating_duration_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// This span as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time it takes to move `bytes` bytes over a link of
    /// `bits_per_sec` capacity, rounded up to a whole microsecond so a
    /// transfer never completes early.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub fn for_transfer(bytes: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "zero-capacity link");
        let bits = (bytes as u128) * 8;
        let micros = (bits * MICROS_PER_SEC as u128).div_ceil(bits_per_sec as u128);
        SimDuration(micros.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2 * MICROS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_secs_f64(0.000_001).as_micros(), 1);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_secs(1).saturating_duration_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_on_inversion() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn transfer_time_matches_paper_example() {
        // Section III: a 128 MB block over 100 Mbps takes ~10s.
        // The paper treats 128 MB as roughly 1 Gbit here; with binary MB the
        // exact figure is 10.7s.
        let d = SimDuration::for_transfer(128 * 1024 * 1024, 100_000_000);
        let secs = d.as_secs_f64();
        assert!((secs - 10.74).abs() < 0.01, "got {secs}");
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte over 1 Gbps is 8 ns; must round up to 1 us, not 0.
        let d = SimDuration::for_transfer(1, 1_000_000_000);
        assert_eq!(d.as_micros(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
        assert!(format!("{:?}", SimTime::from_secs(1)).contains("SimTime"));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
