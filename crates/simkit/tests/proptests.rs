//! Property-based tests for the simulation core: calendar ordering,
//! time arithmetic, and statistics invariants.

use proptest::prelude::*;
use simkit::calendar::Calendar;
use simkit::stats::{percentile_sorted, Boxplot, OnlineStats, Summary};
use simkit::time::{SimDuration, SimTime};

proptest! {
    #[test]
    fn calendar_pops_sorted_and_complete(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_micros(t), i);
        }
        prop_assert_eq!(cal.len(), times.len());
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, _, payload)) = cal.pop() {
            prop_assert!(t >= last, "time went backwards");
            last = t;
            popped.push(payload);
        }
        prop_assert_eq!(popped.len(), times.len());
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_ties_resolve_fifo(count in 1usize..100) {
        let mut cal = Calendar::new();
        for i in 0..count {
            cal.schedule(SimTime::from_secs(42), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| cal.pop().map(|(_, _, p)| p)).collect();
        prop_assert_eq!(order, (0..count).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_cancellation_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut cal = Calendar::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, cal.schedule(SimTime::from_micros(t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(cal.cancel(*id));
            } else {
                kept.push(*i);
            }
        }
        let mut popped: Vec<usize> =
            std::iter::from_fn(|| cal.pop().map(|(_, _, p)| p)).collect();
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    #[test]
    fn time_arithmetic_round_trips(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let t = SimTime::from_micros(a);
        let d = SimDuration::from_micros(b);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d).duration_since(t), d);
        prop_assert_eq!(SimDuration::from_micros(a).as_micros(), a);
    }

    #[test]
    fn transfer_time_is_monotone(bytes in 1u64..1_000_000_000, bw in 1u64..10_000_000_000) {
        let d1 = SimDuration::for_transfer(bytes, bw);
        let d2 = SimDuration::for_transfer(bytes * 2, bw);
        prop_assert!(d2 >= d1, "more bytes should not be faster");
        if bw > 1 {
            let d3 = SimDuration::for_transfer(bytes, bw / 2 + 1);
            prop_assert!(d3 >= d1, "less bandwidth should not be faster");
        }
        // Never rounds to zero for nonzero payloads.
        prop_assert!(d1.as_micros() >= 1);
    }

    #[test]
    fn online_stats_match_batch(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let online: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((online.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert_eq!(online.count(), xs.len() as u64);
        prop_assert_eq!(online.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(online.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn merge_equals_sequential(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let seq: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..split].iter().copied().collect();
        let b: OnlineStats = xs[split..].iter().copied().collect();
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!((a.mean() - seq.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - seq.variance()).abs() < 1e-6);
    }

    #[test]
    fn summary_quartiles_are_ordered(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_samples(&xs).unwrap();
        prop_assert!(s.min <= s.q1);
        prop_assert!(s.q1 <= s.median);
        prop_assert!(s.median <= s.q3);
        prop_assert!(s.q3 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn boxplot_partitions_samples(xs in proptest::collection::vec(-1e3f64..1e3, 4..100)) {
        let b = Boxplot::from_samples(&xs).unwrap();
        // Outliers plus in-fence samples cover everything.
        let in_fence = xs
            .iter()
            .filter(|&&x| x >= b.whisker_low && x <= b.whisker_high)
            .count();
        prop_assert_eq!(in_fence + b.outliers.len(), xs.len());
        // Whiskers are real samples.
        prop_assert!(xs.contains(&b.whisker_low));
        prop_assert!(xs.contains(&b.whisker_high));
    }

    #[test]
    fn percentiles_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100), p1 in 0.0f64..=1.0, p2 in 0.0f64..=1.0) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile_sorted(&sorted, lo).unwrap() <= percentile_sorted(&sorted, hi).unwrap());
    }
}
