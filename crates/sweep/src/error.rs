//! Typed errors for sweep specification and execution.
//!
//! Sweep entry points never panic on bad user input: every way a spec
//! can be malformed maps to a [`SweepError`] variant, and per-shard
//! simulation failures are captured in the report rather than aborting
//! the whole grid.

use std::fmt;

/// Why a sweep could not be expanded or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A grid axis has no values.
    EmptyAxis {
        /// Which axis ("policies", "codes", ...).
        axis: &'static str,
    },
    /// A grid axis lists the same value twice, which would make merged
    /// rows ambiguous.
    DuplicateAxisValue {
        /// Which axis.
        axis: &'static str,
        /// The repeated value's canonical label.
        value: String,
    },
    /// The expanded grid exceeds the shard cap.
    TooManyShards {
        /// Shards the grid would expand to.
        shards: usize,
        /// The cap ([`crate::SweepSpec::MAX_SHARDS`]).
        cap: usize,
    },
    /// An `(n, k)` pair is not a valid erasure code.
    BadCode {
        /// Requested total blocks per stripe.
        n: usize,
        /// Requested data blocks per stripe.
        k: usize,
        /// The coding layer's reason.
        reason: String,
    },
    /// A valid code cannot be placed on the sweep's base topology
    /// (rack-aware placement caps each rack at n−k stripe blocks and
    /// requires n−k ≥ 2 and n ≤ nodes).
    CodeTopology {
        /// Requested total blocks per stripe.
        n: usize,
        /// Requested data blocks per stripe.
        k: usize,
        /// Racks in the base topology.
        racks: usize,
        /// Total nodes in the base topology.
        nodes: usize,
        /// Which placement constraint failed, with a suggested fix.
        reason: String,
    },
    /// A base-configuration field is out of range.
    BadBase {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A Weibull churn axis has an invalid parameter.
    BadChurn {
        /// Which parameter.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A workload axis has an invalid parameter.
    BadWorkload {
        /// Human-readable reason.
        reason: String,
    },
    /// A fetch-policy or speed-profile axis value is invalid.
    BadAxisValue {
        /// Which axis ("fetch", "speeds").
        axis: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A directly-requested shard run (e.g. a trace diff) failed.
    ShardRun {
        /// Human-readable reason.
        reason: String,
    },
    /// The thread count is zero.
    NoThreads,
    /// A JSONL spec line could not be parsed.
    Spec {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyAxis { axis } => {
                write!(f, "sweep axis `{axis}` has no values")
            }
            SweepError::DuplicateAxisValue { axis, value } => {
                write!(f, "sweep axis `{axis}` lists `{value}` more than once")
            }
            SweepError::TooManyShards { shards, cap } => {
                write!(
                    f,
                    "grid expands to {shards} shards, exceeding the cap of {cap}"
                )
            }
            SweepError::BadCode { n, k, reason } => {
                write!(f, "invalid code ({n},{k}): {reason}")
            }
            SweepError::CodeTopology {
                n,
                k,
                racks,
                nodes,
                reason,
            } => {
                write!(
                    f,
                    "code ({n},{k}) cannot be placed on {racks} racks / {nodes} nodes: {reason}"
                )
            }
            SweepError::BadBase { field, value } => {
                write!(
                    f,
                    "base configuration field `{field}` must be positive, got {value}"
                )
            }
            SweepError::BadChurn { field, value } => {
                write!(
                    f,
                    "weibull churn parameter `{field}` must be positive and finite, got {value}"
                )
            }
            SweepError::BadWorkload { reason } => {
                write!(f, "invalid workload axis: {reason}")
            }
            SweepError::BadAxisValue { axis, reason } => {
                write!(f, "invalid {axis} axis value: {reason}")
            }
            SweepError::ShardRun { reason } => {
                write!(f, "shard run failed: {reason}")
            }
            SweepError::NoThreads => write!(f, "thread count must be at least 1"),
            SweepError::Spec { line, reason } => {
                write!(f, "spec line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(SweepError, &str)> = vec![
            (SweepError::EmptyAxis { axis: "codes" }, "codes"),
            (
                SweepError::DuplicateAxisValue {
                    axis: "policies",
                    value: "LF".into(),
                },
                "LF",
            ),
            (
                SweepError::TooManyShards {
                    shards: 70_000,
                    cap: 65_536,
                },
                "65536",
            ),
            (
                SweepError::BadCode {
                    n: 3,
                    k: 9,
                    reason: "k >= n".into(),
                },
                "(3,9)",
            ),
            (
                SweepError::CodeTopology {
                    n: 12,
                    k: 10,
                    racks: 4,
                    nodes: 16,
                    reason: "at most 8 of the 12 stripe blocks fit".into(),
                },
                "(12,10)",
            ),
            (
                SweepError::BadBase {
                    field: "racks",
                    value: 0,
                },
                "racks",
            ),
            (
                SweepError::BadChurn {
                    field: "lifetime_shape",
                    value: -1.0,
                },
                "lifetime_shape",
            ),
            (
                SweepError::BadWorkload {
                    reason: "zero jobs".into(),
                },
                "zero jobs",
            ),
            (
                SweepError::BadAxisValue {
                    axis: "fetch",
                    reason: "extra must be >= 1".into(),
                },
                "fetch",
            ),
            (
                SweepError::ShardRun {
                    reason: "stripe destroyed".into(),
                },
                "stripe destroyed",
            ),
            (SweepError::NoThreads, "at least 1"),
            (
                SweepError::Spec {
                    line: 3,
                    reason: "bad axis".into(),
                },
                "line 3",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text} should mention {needle}");
        }
    }
}
