//! Sharded deterministic parameter sweeps over the experiment harness.
//!
//! The paper's evaluation is a grid: scheduling policy × erasure code ×
//! failure pattern × workload × seed. [`SweepSpec`] describes that grid
//! once; [`SweepSpec::shards`] expands it into an ordered shard list;
//! [`run_sweep`] executes the shards on a work-stealing pool of OS
//! threads and merges the results into one [`SweepReport`] (JSON and a
//! human table) with LF/EDF/BDF deltas per grid axis.
//!
//! # Determinism contract
//!
//! The merged report is **byte-identical** regardless of thread count
//! and shard execution order:
//!
//! * every shard derives its RNG stream seed from an FNV-1a hash of its
//!   canonical *scenario key* — the (base, code, failure, workload,
//!   seed) coordinates, **excluding the policy** — so the value of a
//!   coordinate, not its position in the grid, decides the stream, and
//!   LF/BDF/EDF shards of the same scenario resolve the same failure
//!   (the paper compares policies under identical conditions);
//! * shards write into pre-allocated result slots indexed by grid
//!   position, so the merge consumes results in grid order no matter
//!   which worker finished first;
//! * report rendering walks the grid order and formats floats with
//!   fixed precision — no hashing, no wall-clock, no thread identity.
//!
//! This crate is the grid engine; the narrower `dfs::sweep` module
//! remains the per-figure multi-seed sampler (boxplots over seeds for a
//! fixed configuration).
//!
//! # Quickstart
//!
//! ```
//! use sweep::{run_sweep, FailureAxis, SweepBase, SweepSpec, WorkloadAxis};
//! use dfs::cluster::SpeedProfile;
//! use dfs::ecstore::FetchPolicy;
//! use dfs::Policy;
//!
//! let spec = SweepSpec {
//!     base: SweepBase::fig7_small(),
//!     policies: vec![Policy::LocalityFirst, Policy::EnhancedDegradedFirst],
//!     codes: vec![(8, 6)],
//!     failures: vec![FailureAxis::SingleNode],
//!     workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
//!     fetch_policies: vec![FetchPolicy::Exact],
//!     speeds: vec![SpeedProfile::Homogeneous],
//!     seeds: vec![1],
//! };
//! let report = run_sweep(&spec, 2).unwrap();
//! assert_eq!(report.shards.len(), 2);
//! // Same grid, different thread count: byte-identical report.
//! assert_eq!(report.to_json(), run_sweep(&spec, 1).unwrap().to_json());
//! ```

pub mod error;
pub mod report;
pub mod run;
pub mod spec;

pub use error::SweepError;
pub use report::{ScenarioRow, ShardRow, SweepReport};
pub use run::{run_sweep, trace_diff_scenario, ShardMetrics};
pub use spec::{
    fnv1a, parse_code, parse_policy, parse_spec_jsonl, policy_label, FailureAxis, Shard, SweepBase,
    SweepSpec, WorkloadAxis,
};
