//! Deterministic merge and rendering: one report per sweep, byte-stable.
//!
//! [`SweepReport::merge`] consumes per-shard outcomes **in grid order**
//! (the runner's slot vector) and derives three views:
//!
//! * per-shard rows — raw metrics or the shard's error;
//! * per-scenario rows — the same (code, failure, workload, seed) cell
//!   across every policy, with reductions versus the baseline policy
//!   (LF when present, otherwise the first policy);
//! * per-axis rollups — mean makespan and mean reduction versus the
//!   baseline for every value of the code / failure / workload axes.
//!
//! Rendering walks these vectors in order and formats floats with fixed
//! precision; nothing hashes, nothing consults the clock, so two runs
//! of the same grid — at any thread count — render identical bytes.

use dfs::simkit::report::Table;

use crate::run::ShardMetrics;
use crate::spec::{policy_label, Shard, SweepSpec};

/// One shard's row in the merged report.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardRow {
    /// Policy label ("LF", "EDF", ...).
    pub policy: String,
    /// `(n, k)` code.
    pub code: (usize, usize),
    /// Failure-axis label.
    pub failure: String,
    /// Workload-axis label.
    pub workload: String,
    /// Fetch-policy label ("exact", "redundant:2").
    pub fetch: String,
    /// Speed-profile label ("homogeneous", "stragglers:2,0.25").
    pub speeds: String,
    /// Seed coordinate.
    pub seed: u64,
    /// Metrics, or the shard's failure reason.
    pub metrics: Result<ShardMetrics, String>,
}

/// One scenario (all policies of one non-policy coordinate tuple).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRow {
    /// `(n, k)` code.
    pub code: (usize, usize),
    /// Failure-axis label.
    pub failure: String,
    /// Workload-axis label.
    pub workload: String,
    /// Fetch-policy label.
    pub fetch: String,
    /// Speed-profile label.
    pub speeds: String,
    /// Seed coordinate.
    pub seed: u64,
    /// Makespan per policy, in policy-axis order; `None` for failed
    /// shards.
    pub makespan_secs: Vec<Option<f64>>,
}

/// One (axis value, policy) aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct RollupRow {
    /// Which axis ("code", "failure", "workload").
    pub axis: &'static str,
    /// The axis value's canonical label.
    pub value: String,
    /// Policy label.
    pub policy: String,
    /// Shards of this (value, policy) that completed.
    pub shards_ok: usize,
    /// Mean makespan over completed shards.
    pub mean_makespan_secs: Option<f64>,
    /// Mean relative reduction versus the baseline policy, over
    /// scenarios where both completed. `None` for the baseline itself
    /// or when no scenario pair completed.
    pub mean_reduction_vs_baseline: Option<f64>,
}

/// The merged result of one sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReport {
    /// The base configuration's canonical label.
    pub base_label: String,
    /// Policy labels in axis order.
    pub policies: Vec<String>,
    /// The baseline policy's label (LF when present).
    pub baseline: String,
    /// Per-shard rows in grid order.
    pub shards: Vec<ShardRow>,
    /// Per-scenario rows in scenario-grid order.
    pub scenarios: Vec<ScenarioRow>,
    /// Axis rollups: code values, then failure values, then workload
    /// values (then fetch and speed values when those axes are active);
    /// policies in axis order within each value.
    pub rollups: Vec<RollupRow>,
    /// Whether the fetch-policy axis is rendered. False when the spec
    /// holds only the default `exact` value, keeping pre-axis report
    /// bytes (and goldens) unchanged.
    pub show_fetch: bool,
    /// Whether the speed-profile axis is rendered; false for a sole
    /// `homogeneous` value.
    pub show_speeds: bool,
}

impl SweepReport {
    /// Merges per-shard outcomes (in grid order) into the report.
    pub fn merge(
        spec: &SweepSpec,
        shards: &[Shard],
        outcomes: Vec<Result<ShardMetrics, String>>,
    ) -> SweepReport {
        let policies: Vec<String> = spec.policies.iter().map(policy_label).collect();
        let baseline_idx = policies.iter().position(|p| p == "LF").unwrap_or(0);
        let scenario_count = shards.len() / policies.len().max(1);
        let show_fetch = spec.fetch_policies.len() > 1
            || spec
                .fetch_policies
                .first()
                .is_some_and(|f| *f != dfs::ecstore::FetchPolicy::Exact);
        let show_speeds = spec.speeds.len() > 1
            || spec
                .speeds
                .first()
                .is_some_and(|s| *s != dfs::cluster::SpeedProfile::Homogeneous);

        let rows: Vec<ShardRow> = shards
            .iter()
            .zip(outcomes)
            .map(|(shard, outcome)| ShardRow {
                policy: policy_label(&shard.policy),
                code: shard.code,
                failure: shard.failure.label(),
                workload: shard.workload.label(),
                fetch: shard.fetch.label(),
                speeds: shard.speeds.label(),
                seed: shard.seed,
                metrics: outcome,
            })
            .collect();

        // Policy is the outermost grid axis, so shard index
        // `p * scenario_count + s` is policy `p` of scenario `s`.
        let scenarios: Vec<ScenarioRow> = (0..scenario_count)
            .map(|s| {
                let template = &rows[s];
                ScenarioRow {
                    code: template.code,
                    failure: template.failure.clone(),
                    workload: template.workload.clone(),
                    fetch: template.fetch.clone(),
                    speeds: template.speeds.clone(),
                    seed: template.seed,
                    makespan_secs: (0..policies.len())
                        .map(|p| {
                            rows[p * scenario_count + s]
                                .metrics
                                .as_ref()
                                .ok()
                                .map(|m| m.makespan_secs)
                        })
                        .collect(),
                }
            })
            .collect();

        let mut rollups = Vec::new();
        let code_values: Vec<String> = spec
            .codes
            .iter()
            .map(|&(n, k)| format!("{n},{k}"))
            .collect();
        let failure_values: Vec<String> = spec.failures.iter().map(|f| f.label()).collect();
        let workload_values: Vec<String> = spec.workloads.iter().map(|w| w.label()).collect();
        let fetch_values: Vec<String> = spec.fetch_policies.iter().map(|f| f.label()).collect();
        let speed_values: Vec<String> = spec.speeds.iter().map(|s| s.label()).collect();
        type AxisProjection = fn(&ScenarioRow) -> String;
        let mut axes: Vec<(&'static str, &[String], AxisProjection)> = vec![
            ("code", &code_values, |s| {
                format!("{},{}", s.code.0, s.code.1)
            }),
            ("failure", &failure_values, |s| s.failure.clone()),
            ("workload", &workload_values, |s| s.workload.clone()),
        ];
        if show_fetch {
            axes.push(("fetch", &fetch_values, |s| s.fetch.clone()));
        }
        if show_speeds {
            axes.push(("speeds", &speed_values, |s| s.speeds.clone()));
        }
        for (axis, values, project) in axes {
            for value in values {
                for (p, policy) in policies.iter().enumerate() {
                    let mut makespans = Vec::new();
                    let mut reductions = Vec::new();
                    for scenario in &scenarios {
                        if &project(scenario) != value {
                            continue;
                        }
                        if let Some(m) = scenario.makespan_secs[p] {
                            makespans.push(m);
                            if p != baseline_idx {
                                if let Some(b) = scenario.makespan_secs[baseline_idx] {
                                    if b > 0.0 {
                                        reductions.push((b - m) / b);
                                    }
                                }
                            }
                        }
                    }
                    let mean = |xs: &[f64]| {
                        if xs.is_empty() {
                            None
                        } else {
                            Some(xs.iter().sum::<f64>() / xs.len() as f64)
                        }
                    };
                    rollups.push(RollupRow {
                        axis,
                        value: value.clone(),
                        policy: policy.clone(),
                        shards_ok: makespans.len(),
                        mean_makespan_secs: mean(&makespans),
                        mean_reduction_vs_baseline: if p == baseline_idx {
                            None
                        } else {
                            mean(&reductions)
                        },
                    });
                }
            }
        }

        SweepReport {
            base_label: spec.base.label(),
            baseline: policies[baseline_idx].clone(),
            policies,
            shards: rows,
            scenarios,
            rollups,
            show_fetch,
            show_speeds,
        }
    }

    /// The number of shards that completed.
    pub fn shards_ok(&self) -> usize {
        self.shards.iter().filter(|s| s.metrics.is_ok()).count()
    }

    /// The `, "fetch": "..."` JSON fragment, empty when the fetch axis
    /// is inactive (so default grids keep their golden bytes).
    fn fetch_field(&self, label: &str) -> String {
        if self.show_fetch {
            format!(", \"fetch\": \"{}\"", esc(label))
        } else {
            String::new()
        }
    }

    /// The `, "speeds": "..."` JSON fragment, empty when inactive.
    fn speeds_field(&self, label: &str) -> String {
        if self.show_speeds {
            format!(", \"speeds\": \"{}\"", esc(label))
        } else {
            String::new()
        }
    }

    /// Renders the report as a single JSON document with a fixed field
    /// order — the byte-stable machine artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + 512 * self.shards.len());
        out.push_str("{\n  \"schema\": \"sweep-report-v1\",\n");
        out.push_str(&format!("  \"base\": \"{}\",\n", esc(&self.base_label)));
        out.push_str("  \"policies\": [");
        for (i, p) in self.policies.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", esc(p)));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"baseline\": \"{}\",\n", esc(&self.baseline)));
        out.push_str(&format!("  \"shard_count\": {},\n", self.shards.len()));
        out.push_str(&format!("  \"shards_ok\": {},\n", self.shards_ok()));

        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!(
                "\"policy\": \"{}\", \"code\": \"{},{}\", \"failure\": \"{}\", \"workload\": \"{}\"{}{}, \"seed\": {}",
                esc(&s.policy),
                s.code.0,
                s.code.1,
                esc(&s.failure),
                esc(&s.workload),
                self.fetch_field(&s.fetch),
                self.speeds_field(&s.speeds),
                s.seed
            ));
            match &s.metrics {
                Ok(m) => {
                    out.push_str(&format!(
                        ", \"status\": \"ok\", \"stream_seed\": {}, \"makespan_secs\": {}, \"jobs_finished\": {}, \"maps_total\": {}, \"maps_degraded\": {}, \"tasks_queued_degraded\": {}, \"job_p50_secs\": {}, \"job_p95_secs\": {}, \"job_p99_secs\": {}",
                        m.stream_seed,
                        num(m.makespan_secs),
                        m.jobs_finished,
                        m.maps_total,
                        m.maps_degraded,
                        m.tasks_queued_degraded,
                        opt(m.job_p50_secs),
                        opt(m.job_p95_secs),
                        opt(m.job_p99_secs)
                    ));
                }
                Err(e) => {
                    out.push_str(&format!(
                        ", \"status\": \"error\", \"error\": \"{}\"",
                        esc(e)
                    ));
                }
            }
            out.push('}');
            if i + 1 < self.shards.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");

        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!(
                "\"code\": \"{},{}\", \"failure\": \"{}\", \"workload\": \"{}\"{}{}, \"seed\": {}, \"makespan_secs\": {{",
                s.code.0,
                s.code.1,
                esc(&s.failure),
                esc(&s.workload),
                self.fetch_field(&s.fetch),
                self.speeds_field(&s.speeds),
                s.seed
            ));
            for (p, policy) in self.policies.iter().enumerate() {
                if p > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", esc(policy), opt(s.makespan_secs[p])));
            }
            out.push_str("}, \"reduction_vs_baseline\": {");
            let baseline_idx = self
                .policies
                .iter()
                .position(|p| p == &self.baseline)
                .unwrap_or(0);
            let mut first = true;
            for (p, policy) in self.policies.iter().enumerate() {
                if p == baseline_idx {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let reduction = match (s.makespan_secs[baseline_idx], s.makespan_secs[p]) {
                    (Some(b), Some(m)) if b > 0.0 => Some((b - m) / b),
                    _ => None,
                };
                out.push_str(&format!("\"{}\": {}", esc(policy), opt(reduction)));
            }
            out.push_str("}}");
            if i + 1 < self.scenarios.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");

        out.push_str("  \"rollups\": [\n");
        for (i, r) in self.rollups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"axis\": \"{}\", \"value\": \"{}\", \"policy\": \"{}\", \"shards_ok\": {}, \"mean_makespan_secs\": {}, \"mean_reduction_vs_baseline\": {}}}",
                r.axis,
                esc(&r.value),
                esc(&r.policy),
                r.shards_ok,
                opt(r.mean_makespan_secs),
                opt(r.mean_reduction_vs_baseline)
            ));
            if i + 1 < self.rollups.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the human-readable comparison report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        out.push_str("# Parameter sweep report\n\n");
        out.push_str(&format!("base: {}\n", self.base_label));
        out.push_str(&format!(
            "policies: {} (baseline {})\n",
            self.policies.join(", "),
            self.baseline
        ));
        out.push_str(&format!(
            "shards: {} ({} ok, {} failed)\n\n",
            self.shards.len(),
            self.shards_ok(),
            self.shards.len() - self.shards_ok()
        ));

        out.push_str("## Shards\n\n");
        let mut headers: Vec<&str> = vec!["policy", "code", "failure", "workload"];
        if self.show_fetch {
            headers.push("fetch");
        }
        if self.show_speeds {
            headers.push("speeds");
        }
        headers.extend([
            "seed",
            "status",
            "makespan_s",
            "degraded",
            "job_p50_s",
            "job_p95_s",
            "job_p99_s",
        ]);
        let mut table = Table::new(&headers);
        for s in &self.shards {
            let mut row = vec![
                s.policy.clone(),
                format!("{},{}", s.code.0, s.code.1),
                s.failure.clone(),
                s.workload.clone(),
            ];
            if self.show_fetch {
                row.push(s.fetch.clone());
            }
            if self.show_speeds {
                row.push(s.speeds.clone());
            }
            row.push(s.seed.to_string());
            match &s.metrics {
                Ok(m) => row.extend([
                    "ok".to_string(),
                    format!("{:.3}", m.makespan_secs),
                    m.maps_degraded.to_string(),
                    opt3(m.job_p50_secs),
                    opt3(m.job_p95_secs),
                    opt3(m.job_p99_secs),
                ]),
                Err(e) => row.extend([
                    format!("error: {e}"),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]),
            }
            table.row(&row);
        }
        out.push_str(&table.render());

        out.push_str("\n## Scenarios\n\n");
        let mut headers: Vec<String> = ["code", "failure", "workload"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        if self.show_fetch {
            headers.push("fetch".to_string());
        }
        if self.show_speeds {
            headers.push("speeds".to_string());
        }
        headers.push("seed".to_string());
        for p in &self.policies {
            headers.push(format!("{p} makespan_s"));
        }
        for p in &self.policies {
            if p != &self.baseline {
                headers.push(format!("{p} Δ% vs {}", self.baseline));
            }
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        let baseline_idx = self
            .policies
            .iter()
            .position(|p| p == &self.baseline)
            .unwrap_or(0);
        for s in &self.scenarios {
            let mut row = vec![
                format!("{},{}", s.code.0, s.code.1),
                s.failure.clone(),
                s.workload.clone(),
            ];
            if self.show_fetch {
                row.push(s.fetch.clone());
            }
            if self.show_speeds {
                row.push(s.speeds.clone());
            }
            row.push(s.seed.to_string());
            for p in 0..self.policies.len() {
                row.push(opt3(s.makespan_secs[p]));
            }
            for p in 0..self.policies.len() {
                if p == baseline_idx {
                    continue;
                }
                let cell = match (s.makespan_secs[baseline_idx], s.makespan_secs[p]) {
                    (Some(b), Some(m)) if b > 0.0 => format!("{:+.2}", (b - m) / b * 100.0),
                    _ => "-".to_string(),
                };
                row.push(cell);
            }
            table.row(&row);
        }
        out.push_str(&table.render());

        out.push_str("\n## Axis rollups\n\n");
        let mut table = Table::new(&[
            "axis",
            "value",
            "policy",
            "ok",
            "mean_makespan_s",
            "mean_Δ%_vs_baseline",
        ]);
        for r in &self.rollups {
            table.row(&[
                r.axis.to_string(),
                r.value.clone(),
                r.policy.clone(),
                r.shards_ok.to_string(),
                opt3(r.mean_makespan_secs),
                match r.mean_reduction_vs_baseline {
                    Some(x) => format!("{:+.2}", x * 100.0),
                    None => "-".to_string(),
                },
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

/// Fixed-precision float for JSON (6 decimal places — sub-microsecond
/// for seconds values, stable across platforms).
fn num(x: f64) -> String {
    format!("{x:.6}")
}

fn opt(x: Option<f64>) -> String {
    match x {
        Some(x) => num(x),
        None => "null".to_string(),
    }
}

fn opt3(x: Option<f64>) -> String {
    match x {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    }
}

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FailureAxis, SweepBase, WorkloadAxis};
    use dfs::cluster::SpeedProfile;
    use dfs::ecstore::FetchPolicy;
    use dfs::Policy;

    fn fake_metrics(stream_seed: u64, makespan: f64) -> ShardMetrics {
        ShardMetrics {
            stream_seed,
            makespan_secs: makespan,
            jobs_finished: 1,
            maps_total: 240,
            maps_degraded: 12,
            tasks_queued_degraded: 12,
            job_p50_secs: Some(makespan),
            job_p95_secs: Some(makespan),
            job_p99_secs: None,
        }
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            base: SweepBase::fig7_small(),
            policies: vec![Policy::EnhancedDegradedFirst, Policy::LocalityFirst],
            codes: vec![(8, 6)],
            failures: vec![FailureAxis::SingleNode],
            workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
            fetch_policies: vec![FetchPolicy::Exact],
            speeds: vec![SpeedProfile::Homogeneous],
            seeds: vec![1, 2],
        }
    }

    #[test]
    fn merge_pairs_policies_by_scenario_and_finds_lf_baseline() {
        let spec = spec();
        let shards = spec.shards().expect("valid");
        // Grid order: EDF seed1, EDF seed2, LF seed1, LF seed2.
        let outcomes = vec![
            Ok(fake_metrics(11, 80.0)),
            Ok(fake_metrics(22, 90.0)),
            Ok(fake_metrics(11, 100.0)),
            Err("boom".to_string()),
        ];
        let report = SweepReport::merge(&spec, &shards, outcomes);
        // Baseline is LF even though it is listed second.
        assert_eq!(report.baseline, "LF");
        assert_eq!(report.scenarios.len(), 2);
        assert_eq!(
            report.scenarios[0].makespan_secs,
            vec![Some(80.0), Some(100.0)]
        );
        assert_eq!(report.scenarios[1].makespan_secs, vec![Some(90.0), None]);
        // Rollup: EDF mean over both scenarios, reduction only where LF
        // completed (scenario 1: (100-80)/100 = 0.2).
        let edf_code = report
            .rollups
            .iter()
            .find(|r| r.axis == "code" && r.policy == "EDF")
            .expect("rollup row");
        assert_eq!(edf_code.shards_ok, 2);
        assert_eq!(edf_code.mean_makespan_secs, Some(85.0));
        assert_eq!(edf_code.mean_reduction_vs_baseline, Some(0.2));
        let lf_code = report
            .rollups
            .iter()
            .find(|r| r.axis == "code" && r.policy == "LF")
            .expect("rollup row");
        assert_eq!(lf_code.shards_ok, 1);
        assert_eq!(lf_code.mean_reduction_vs_baseline, None);
    }

    #[test]
    fn renders_are_deterministic_and_valid() {
        let spec = spec();
        let shards = spec.shards().expect("valid");
        let outcomes = vec![
            Ok(fake_metrics(11, 80.0)),
            Ok(fake_metrics(22, 90.0)),
            Ok(fake_metrics(11, 100.0)),
            Err("data loss: \"stripe\"\n".to_string()),
        ];
        let a = SweepReport::merge(&spec, &shards, outcomes.clone());
        let b = SweepReport::merge(&spec, &shards, outcomes);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.human(), b.human());
        // The JSON parses back (escaping of the error row included).
        let doc = dfs::obs::json::Json::parse(&a.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("sweep-report-v1")
        );
        assert_eq!(doc.get("shard_count").and_then(|s| s.as_f64()), Some(4.0));
        assert_eq!(doc.get("shards_ok").and_then(|s| s.as_f64()), Some(3.0));
        // Human report includes the three sections.
        let human = a.human();
        assert!(human.contains("## Shards"));
        assert!(human.contains("## Scenarios"));
        assert!(human.contains("## Axis rollups"));
        assert!(human.contains("error: data loss"));
    }
}
