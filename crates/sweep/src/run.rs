//! Shard execution: a work-stealing pool of OS threads over the
//! experiment harness.
//!
//! Workers claim shard indices from an atomic cursor and write results
//! into pre-allocated per-shard slots, so the merged output is a pure
//! function of the grid — independent of thread count, scheduling and
//! finish order. A shard whose simulation fails (e.g. a random failure
//! scenario that destroys a stripe under a weak code) records an error
//! row instead of aborting the sweep, mirroring how the paper's 30
//! random configurations only include valid ones.

use dfs::cluster::FailureTimeline;
use dfs::erasure::CodeParams;
use dfs::experiment::{PlacementKind, Policy};
use dfs::obs::aggregate::Aggregator;
use dfs::workloads::{map_only_job, simulation_default_job, ArrivalTrace};
use dfs::{Experiment, FailureSpec};

use crate::error::SweepError;
use crate::report::SweepReport;
use crate::spec::{FailureAxis, Shard, SweepBase, SweepSpec, WorkloadAxis};

/// The measurements one shard contributes to the merged report.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardMetrics {
    /// The RNG stream seed the shard ran under (scenario-keyed).
    pub stream_seed: u64,
    /// End-to-end makespan in seconds.
    pub makespan_secs: f64,
    /// Jobs that finished.
    pub jobs_finished: usize,
    /// Map tasks executed.
    pub maps_total: usize,
    /// Map tasks that ran degraded (surviving-block reconstruction).
    pub maps_degraded: usize,
    /// Map tasks queued as degraded at submission.
    pub tasks_queued_degraded: usize,
    /// Job latency percentiles in seconds (absent when no job finished).
    pub job_p50_secs: Option<f64>,
    /// 95th percentile job latency.
    pub job_p95_secs: Option<f64>,
    /// 99th percentile job latency.
    pub job_p99_secs: Option<f64>,
}

/// Builds the [`Experiment`] one shard describes, returning it with the
/// shard's scenario-keyed stream seed.
fn shard_experiment(base: &SweepBase, shard: &Shard) -> Result<(Experiment, u64), String> {
    let stream_seed = shard.stream_seed(base);
    let topo = base.topology();
    let (n, k) = shard.code;
    let code = CodeParams::new(n, k).map_err(|e| format!("code: {e}"))?;
    let (failure, timeline) = match &shard.failure {
        FailureAxis::None => (FailureSpec::None, FailureTimeline::new()),
        FailureAxis::SingleNode => (FailureSpec::RandomSingleNode, FailureTimeline::new()),
        FailureAxis::DoubleNode => (FailureSpec::RandomDoubleNode, FailureTimeline::new()),
        FailureAxis::Rack => (FailureSpec::RandomRack, FailureTimeline::new()),
        FailureAxis::Weibull(churn) => {
            // Churn is part of the scenario, not the policy: seeding it
            // from the scenario stream keeps LF/BDF/EDF shards of one
            // scenario under identical failure sequences.
            let timeline = FailureTimeline::weibull(&topo, churn, stream_seed)
                .map_err(|e| format!("churn: {e}"))?;
            (FailureSpec::None, timeline)
        }
    };
    let jobs = match &shard.workload {
        WorkloadAxis::Default => vec![simulation_default_job()],
        WorkloadAxis::MapOnly { map_secs } => vec![map_only_job(*map_secs)],
        WorkloadAxis::Poisson { jobs, mean_secs } => {
            ArrivalTrace::poisson(stream_seed, *jobs, *mean_secs)
                .map_err(|e| format!("workload: {e:?}"))?
                .into_jobs()
        }
    };
    let mut config = base.engine_config();
    config.fetch_policy = shard.fetch;
    config.node_speeds = shard.speeds;
    let exp = Experiment {
        topo,
        code,
        num_blocks: base.num_blocks,
        placement: PlacementKind::RackAware,
        failure,
        timeline,
        config,
        jobs,
    };
    Ok((exp, stream_seed))
}

/// Runs one shard to completion. Errors are stringified for the report
/// row; they do not abort the sweep.
fn run_shard(base: &SweepBase, shard: &Shard) -> Result<ShardMetrics, String> {
    let (exp, stream_seed) = shard_experiment(base, shard)?;
    let mut agg = Aggregator::new(exp.aggregator_config(stream_seed));
    let run = exp
        .run_traced(shard.policy, stream_seed, &mut agg)
        .map_err(|e| e.to_string())?;
    let report = agg.report();
    Ok(ShardMetrics {
        stream_seed,
        makespan_secs: run.makespan.as_secs_f64(),
        jobs_finished: report.jobs_finished,
        maps_total: run.tasks.len(),
        maps_degraded: report.maps_degraded,
        tasks_queued_degraded: report.tasks_queued_degraded,
        job_p50_secs: report.job_latency_p50,
        job_p95_secs: report.job_latency_p95,
        job_p99_secs: report.job_latency_p99,
    })
}

/// Expands `spec` and runs every shard on `threads` OS threads,
/// returning the deterministically merged report.
///
/// The report is byte-identical for any `threads >= 1`: shard results
/// land in slots indexed by grid position and each shard's RNG stream
/// is a pure function of its coordinates.
///
/// # Errors
///
/// Spec validation errors ([`SweepError`]); also [`SweepError::NoThreads`]
/// for `threads == 0`. Per-shard simulation failures are reported in
/// the corresponding row, not as an `Err`.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<SweepReport, SweepError> {
    if threads == 0 {
        return Err(SweepError::NoThreads);
    }
    let shards = spec.shards()?;
    let outcomes = run_shards(&spec.base, &shards, threads);
    Ok(SweepReport::merge(spec, &shards, outcomes))
}

/// Re-runs the first scenario of `spec` under `policy_a` and `policy_b`
/// with full tracing and returns the rendered lane-by-lane trace diff
/// ([`dfs::obs::diff`]), keeping the `top` largest end shifts. Both
/// runs share the scenario-keyed stream seed, so failure sequences and
/// workloads are identical and the diff attributes the makespan delta
/// purely to scheduling.
///
/// # Errors
///
/// Spec validation errors, or [`SweepError::ShardRun`] when either
/// traced run fails.
pub fn trace_diff_scenario(
    spec: &SweepSpec,
    policy_a: Policy,
    policy_b: Policy,
    top: usize,
) -> Result<String, SweepError> {
    use dfs::obs::diff::{diff_streams, render};
    use dfs::obs::event::SimEvent;
    use dfs::obs::sink::VecSink;
    use dfs::simkit::time::SimTime;

    let shards = spec.shards()?;
    let Some(scenario) = shards.first() else {
        return Err(SweepError::EmptyAxis { axis: "shards" });
    };
    let traced = |policy: Policy| -> Result<Vec<(SimTime, SimEvent)>, SweepError> {
        let mut shard = scenario.clone();
        shard.policy = policy;
        let (exp, stream_seed) = shard_experiment(&spec.base, &shard)
            .map_err(|reason| SweepError::ShardRun { reason })?;
        let mut sink = VecSink::new();
        exp.run_traced(policy, stream_seed, &mut sink)
            .map_err(|e| SweepError::ShardRun {
                reason: e.to_string(),
            })?;
        Ok(sink.events)
    };
    let a = traced(policy_a)?;
    let b = traced(policy_b)?;
    Ok(render(&diff_streams(&a, &b, top)))
}

/// Runs the shard list on a pool and returns per-shard outcomes in grid
/// order.
fn run_shards(
    base: &SweepBase,
    shards: &[Shard],
    threads: usize,
) -> Vec<Result<ShardMetrics, String>> {
    let workers = threads.min(shards.len()).max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<ShardMetrics, String>>>> =
        shards.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= shards.len() {
                    break;
                }
                let outcome = run_shard(base, &shards[i]);
                // A poisoned slot only means another worker panicked
                // mid-store; the stored value is still ours to replace.
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| Err("shard was never executed".to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Shard, SweepBase};
    use dfs::cluster::SpeedProfile;
    use dfs::ecstore::FetchPolicy;
    use dfs::Policy;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            base: SweepBase::fig7_small(),
            policies: vec![Policy::LocalityFirst, Policy::EnhancedDegradedFirst],
            codes: vec![(8, 6)],
            failures: vec![FailureAxis::SingleNode],
            workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
            fetch_policies: vec![FetchPolicy::Exact],
            speeds: vec![SpeedProfile::Homogeneous],
            seeds: vec![1],
        }
    }

    #[test]
    fn zero_threads_is_an_error() {
        assert_eq!(run_sweep(&tiny_spec(), 0), Err(SweepError::NoThreads));
    }

    #[test]
    fn shards_of_one_scenario_share_the_failure() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, 2).expect("sweep runs");
        assert_eq!(report.shards.len(), 2);
        let lf = &report.shards[0];
        let edf = &report.shards[1];
        // Same scenario stream...
        let lf_m = lf.metrics.as_ref().expect("LF shard ok");
        let edf_m = edf.metrics.as_ref().expect("EDF shard ok");
        assert_eq!(lf_m.stream_seed, edf_m.stream_seed);
        // ...and the same degraded workload (one failed node => same
        // number of lost blocks to reconstruct under either policy).
        assert_eq!(lf_m.maps_total, edf_m.maps_total);
        assert!(lf_m.maps_degraded > 0);
        assert_eq!(lf_m.maps_degraded, edf_m.maps_degraded);
        // EDF should not lose to LF on its home turf.
        assert!(edf_m.makespan_secs <= lf_m.makespan_secs * 1.02);
    }

    #[test]
    fn failed_shards_become_rows_not_errors() {
        // A shard whose simulation cannot run — here (4,3) placement,
        // which the rack-aware layer rejects for parity 1 — must yield
        // an error row, not a panic or a sweep abort. (Specs reject
        // such codes eagerly now, so drive the executor directly.)
        let base = SweepBase::fig7_small();
        let shard = Shard {
            index: 0,
            policy: Policy::LocalityFirst,
            code: (4, 3),
            failure: FailureAxis::Rack,
            workload: WorkloadAxis::MapOnly { map_secs: 10.0 },
            fetch: FetchPolicy::Exact,
            speeds: SpeedProfile::Homogeneous,
            seed: 1,
        };
        let outcomes = run_shards(&base, std::slice::from_ref(&shard), 2);
        assert_eq!(outcomes.len(), 1);
        let err = outcomes[0].as_ref().expect_err("placement must fail");
        assert!(err.contains("n-k"), "unexpected error: {err}");
    }

    #[test]
    fn impossible_code_topology_is_rejected_before_any_shard_runs() {
        // (12,10) needs 12 blocks but 4 racks × parity 2 host only 8;
        // the spec must fail validation up front with the cap named.
        let spec = SweepSpec {
            codes: vec![(12, 10)],
            ..tiny_spec()
        };
        let err = run_sweep(&spec, 2).expect_err("spec must be rejected");
        assert!(
            matches!(err, SweepError::CodeTopology { n: 12, k: 10, .. }),
            "unexpected error: {err:?}"
        );
        let text = err.to_string();
        assert!(text.contains("at most 8"), "cap not named: {text}");
        // Parity below the rack-aware floor is also an eager error.
        let spec = SweepSpec {
            codes: vec![(4, 3)],
            ..tiny_spec()
        };
        assert!(matches!(
            run_sweep(&spec, 2),
            Err(SweepError::CodeTopology { n: 4, k: 3, .. })
        ));
    }
}
