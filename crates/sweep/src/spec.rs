//! Grid specification: axes, canonical labels, shard expansion and the
//! JSONL spec format.
//!
//! A [`SweepSpec`] is the cartesian product of seven axes — policy,
//! code, failure, workload, fetch policy, speed profile, seed — over one
//! [`SweepBase`] cluster shape. [`SweepSpec::shards`] validates the spec
//! and expands it into the canonical grid order (policy → code →
//! failure → workload → fetch → speeds → seed).
//!
//! # Shard stream seeding
//!
//! Each shard's RNG stream seed is the FNV-1a hash of its *scenario
//! key*: the canonical labels of the base, code, failure, workload and
//! seed coordinates. The policy and the fetch policy are deliberately
//! **excluded** — the paper compares LF/BDF/EDF under identical failure
//! scenarios, and exact-vs-redundant fetches are compared the same way,
//! so shards that differ only in those axes must resolve the same random
//! failure and the same Poisson arrivals. The speed profile joins the
//! key only when it is not `homogeneous`, so pre-existing grids keep
//! their golden stream seeds. Because the key is built from coordinate
//! *values*, the stream is independent of where a value sits in its
//! axis list and of grid enumeration order.

use dfs::cluster::{SpeedProfile, Topology, WeibullChurn};
use dfs::ecstore::FetchPolicy;
use dfs::erasure::CodeParams;
use dfs::mapreduce::engine::EngineConfig;
use dfs::netsim::NetConfig;
use dfs::obs::json::Json;
use dfs::presets::MBPS;
use dfs::simkit::time::SimDuration;
use dfs::Policy;

use crate::error::SweepError;

/// FNV-1a 64-bit hash — the shard stream-seed function. Stable across
/// platforms and releases; the golden reports depend on it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cluster shape and engine tunables shared by every shard.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepBase {
    /// Number of racks.
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Map slots per node.
    pub map_slots: u32,
    /// Reduce slots per node.
    pub reduce_slots: u32,
    /// Native blocks `F`.
    pub num_blocks: usize,
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Node link speed in Mbps.
    pub node_mbps: u64,
    /// Rack link speed in Mbps.
    pub rack_mbps: u64,
}

impl SweepBase {
    /// The scaled-down Figure 7 shape used by tests and goldens:
    /// 16 nodes / 4 racks, 240 blocks, 100 Mbps racks.
    pub fn fig7_small() -> SweepBase {
        SweepBase {
            racks: 4,
            nodes_per_rack: 4,
            map_slots: 2,
            reduce_slots: 1,
            num_blocks: 240,
            block_bytes: 128 * 1024 * 1024,
            node_mbps: 1000,
            rack_mbps: 100,
        }
    }

    /// The paper's Section V-B default: 40 nodes / 4 racks, 1440 blocks,
    /// 1 Gbps everywhere.
    pub fn paper_default() -> SweepBase {
        SweepBase {
            racks: 4,
            nodes_per_rack: 10,
            map_slots: 4,
            reduce_slots: 1,
            num_blocks: 1440,
            block_bytes: 128 * 1024 * 1024,
            node_mbps: 1000,
            rack_mbps: 1000,
        }
    }

    /// A 10,000-node scale profile: 100 racks × 100 nodes. The flat
    /// rack axis stands in for a three-tier (host → ToR → core) fabric:
    /// each node's up/down links model the host NIC, each rack's
    /// up/down links model the ToR uplink into a non-blocking core.
    /// 7500 blocks divide evenly under (8,6), (12,10) and (20,15).
    pub fn scale_10k() -> SweepBase {
        SweepBase {
            racks: 100,
            nodes_per_rack: 100,
            map_slots: 4,
            reduce_slots: 1,
            num_blocks: 7500,
            block_bytes: 128 * 1024 * 1024,
            node_mbps: 1000,
            rack_mbps: 10_000,
        }
    }

    /// The canonical label used in scenario keys and report headers.
    pub fn label(&self) -> String {
        format!(
            "racks={},npr={},slots={}+{},blocks={},block_bytes={},node_mbps={},rack_mbps={}",
            self.racks,
            self.nodes_per_rack,
            self.map_slots,
            self.reduce_slots,
            self.num_blocks,
            self.block_bytes,
            self.node_mbps,
            self.rack_mbps
        )
    }

    /// The topology this base describes.
    pub fn topology(&self) -> Topology {
        Topology::homogeneous(
            self.racks,
            self.nodes_per_rack,
            self.map_slots,
            self.reduce_slots,
        )
    }

    /// The engine configuration this base describes.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            block_bytes: self.block_bytes,
            net: NetConfig {
                node_bps: self.node_mbps * MBPS,
                rack_bps: self.rack_mbps * MBPS,
            },
            ..EngineConfig::default()
        }
    }

    /// Checks that code `(n, k)` can be rack-aware-placed on this
    /// topology, mirroring `ecstore`'s placement preconditions so an
    /// impossible combination is rejected when the spec is built, not
    /// mid-sweep as a failed shard.
    ///
    /// # Errors
    ///
    /// [`SweepError::CodeTopology`] naming the violated constraint —
    /// n−k ≥ 2, n ≤ nodes, or the ≤ n−k blocks-per-rack cap.
    pub fn check_code_fits(&self, n: usize, k: usize) -> Result<(), SweepError> {
        let racks = self.racks;
        let nodes = self.racks * self.nodes_per_rack;
        let parity = n.saturating_sub(k);
        let reason = if parity < 2 {
            format!("rack-aware placement requires n-k >= 2, got {parity}")
        } else if n > nodes {
            format!("stripe width {n} exceeds cluster size {nodes}")
        } else if n > racks * parity {
            format!(
                "rack-aware placement caps each rack at n-k = {parity} blocks, \
                 so at most {cap} of the {n} stripe blocks fit; use more racks \
                 or a wider-parity code",
                cap = racks * parity
            )
        } else {
            return Ok(());
        };
        Err(SweepError::CodeTopology {
            n,
            k,
            racks,
            nodes,
            reason,
        })
    }

    fn validate(&self) -> Result<(), SweepError> {
        let fields: [(&'static str, u64); 7] = [
            ("racks", self.racks as u64),
            ("nodes_per_rack", self.nodes_per_rack as u64),
            ("map_slots", u64::from(self.map_slots)),
            ("num_blocks", self.num_blocks as u64),
            ("block_bytes", self.block_bytes),
            ("node_mbps", self.node_mbps),
            ("rack_mbps", self.rack_mbps),
        ];
        for (field, value) in fields {
            if value == 0 {
                return Err(SweepError::BadBase { field, value });
            }
        }
        Ok(())
    }
}

/// One value of the failure axis.
#[derive(Clone, Debug, PartialEq)]
pub enum FailureAxis {
    /// Normal mode — no failure.
    None,
    /// One uniformly random node fails at t=0.
    SingleNode,
    /// Two distinct uniformly random nodes fail at t=0.
    DoubleNode,
    /// One uniformly random rack fails at t=0.
    Rack,
    /// Seeded Weibull churn: nodes fail and recover mid-run.
    Weibull(WeibullChurn),
}

impl FailureAxis {
    /// The canonical label used in scenario keys and report rows.
    pub fn label(&self) -> String {
        match self {
            FailureAxis::None => "none".to_string(),
            FailureAxis::SingleNode => "node".to_string(),
            FailureAxis::DoubleNode => "double".to_string(),
            FailureAxis::Rack => "rack".to_string(),
            FailureAxis::Weibull(c) => format!(
                "weibull(shape={},life={},rshape={},repair={},horizon={})",
                c.lifetime_shape,
                c.lifetime_scale_secs,
                c.repair_shape,
                c.repair_scale_secs,
                c.horizon_secs
            ),
        }
    }

    /// Parses a failure-axis token: `none`, `node`, `double`, `rack`,
    /// `weibull` (default churn over a 600 s horizon) or
    /// `weibull:SHAPE,LIFE,RSHAPE,REPAIR,HORIZON`.
    pub fn parse(token: &str) -> Result<FailureAxis, String> {
        match token {
            "none" => Ok(FailureAxis::None),
            "node" => Ok(FailureAxis::SingleNode),
            "double" => Ok(FailureAxis::DoubleNode),
            "rack" => Ok(FailureAxis::Rack),
            "weibull" => Ok(FailureAxis::Weibull(WeibullChurn::default_for_horizon(
                600.0,
            ))),
            other => {
                let Some(params) = other.strip_prefix("weibull:") else {
                    return Err(format!(
                        "unknown failure `{other}` (expected none|node|double|rack|weibull[:shape,life,rshape,repair,horizon])"
                    ));
                };
                let parts: Vec<&str> = params.split(',').collect();
                if parts.len() != 5 {
                    return Err(format!(
                        "weibull takes 5 comma-separated parameters, got {}",
                        parts.len()
                    ));
                }
                let mut vals = [0.0f64; 5];
                for (i, p) in parts.iter().enumerate() {
                    vals[i] = p
                        .trim()
                        .parse::<f64>()
                        .map_err(|e| format!("weibull parameter `{p}`: {e}"))?;
                }
                Ok(FailureAxis::Weibull(WeibullChurn {
                    lifetime_shape: vals[0],
                    lifetime_scale_secs: vals[1],
                    repair_shape: vals[2],
                    repair_scale_secs: vals[3],
                    horizon_secs: vals[4],
                }))
            }
        }
    }

    fn validate(&self) -> Result<(), SweepError> {
        if let FailureAxis::Weibull(c) = self {
            let fields: [(&'static str, f64); 5] = [
                ("lifetime_shape", c.lifetime_shape),
                ("lifetime_scale_secs", c.lifetime_scale_secs),
                ("repair_shape", c.repair_shape),
                ("repair_scale_secs", c.repair_scale_secs),
                ("horizon_secs", c.horizon_secs),
            ];
            for (field, value) in fields {
                if !(value > 0.0 && value.is_finite()) {
                    return Err(SweepError::BadChurn { field, value });
                }
            }
        }
        Ok(())
    }
}

/// One value of the workload axis.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadAxis {
    /// The Section V-B default job (map N(20,1), reduce N(30,2)).
    Default,
    /// A deterministic map-only job with the given mean map time.
    MapOnly {
        /// Mean map-task time in seconds.
        map_secs: f64,
    },
    /// A Poisson multi-job trace (Figure 7(f) style), generated from the
    /// shard's scenario stream so every policy replays the same
    /// arrivals.
    Poisson {
        /// Number of jobs.
        jobs: usize,
        /// Mean inter-arrival time in seconds.
        mean_secs: f64,
    },
}

impl WorkloadAxis {
    /// The canonical label used in scenario keys and report rows.
    pub fn label(&self) -> String {
        match self {
            WorkloadAxis::Default => "default".to_string(),
            WorkloadAxis::MapOnly { map_secs } => format!("maponly({map_secs})"),
            WorkloadAxis::Poisson { jobs, mean_secs } => format!("poisson({jobs}x{mean_secs})"),
        }
    }

    /// Parses a workload token: `default`, `maponly:SECS` or
    /// `poisson:JOBSxMEAN` (e.g. `poisson:10x120`).
    pub fn parse(token: &str) -> Result<WorkloadAxis, String> {
        if token == "default" {
            return Ok(WorkloadAxis::Default);
        }
        if let Some(secs) = token.strip_prefix("maponly:") {
            let map_secs = secs
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("maponly seconds `{secs}`: {e}"))?;
            return Ok(WorkloadAxis::MapOnly { map_secs });
        }
        if let Some(params) = token.strip_prefix("poisson:") {
            let Some((jobs, mean)) = params.split_once('x') else {
                return Err(format!("poisson takes JOBSxMEAN, got `{params}`"));
            };
            let jobs = jobs
                .trim()
                .parse::<usize>()
                .map_err(|e| format!("poisson job count `{jobs}`: {e}"))?;
            let mean_secs = mean
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("poisson mean `{mean}`: {e}"))?;
            return Ok(WorkloadAxis::Poisson { jobs, mean_secs });
        }
        Err(format!(
            "unknown workload `{token}` (expected default|maponly:SECS|poisson:JOBSxMEAN)"
        ))
    }

    fn validate(&self) -> Result<(), SweepError> {
        match *self {
            WorkloadAxis::Default => Ok(()),
            WorkloadAxis::MapOnly { map_secs } => {
                if map_secs > 0.0 && map_secs.is_finite() {
                    Ok(())
                } else {
                    Err(SweepError::BadWorkload {
                        reason: format!(
                            "maponly seconds must be positive and finite, got {map_secs}"
                        ),
                    })
                }
            }
            WorkloadAxis::Poisson { jobs, mean_secs } => {
                if jobs == 0 {
                    return Err(SweepError::BadWorkload {
                        reason: "poisson job count must be at least 1".to_string(),
                    });
                }
                if !(mean_secs > 0.0 && mean_secs.is_finite()) {
                    return Err(SweepError::BadWorkload {
                        reason: format!(
                            "poisson mean inter-arrival must be positive and finite, got {mean_secs}"
                        ),
                    });
                }
                Ok(())
            }
        }
    }
}

/// The canonical label of a policy, unique per distinct axis value
/// (unlike [`Policy::name`], delay scheduling includes its wait).
pub fn policy_label(policy: &Policy) -> String {
    match *policy {
        Policy::DelayScheduling { max_wait } => {
            format!("LF+delay({})", max_wait.as_secs_f64())
        }
        ref p => p.name().to_string(),
    }
}

/// Parses a policy token: `lf`, `bdf`, `edf`, `bdf+locality`,
/// `bdf+rack` or `lf+delay:SECS`.
pub fn parse_policy(token: &str) -> Result<Policy, String> {
    match token {
        "lf" => Ok(Policy::LocalityFirst),
        "bdf" => Ok(Policy::BasicDegradedFirst),
        "edf" => Ok(Policy::EnhancedDegradedFirst),
        "bdf+locality" => Ok(Policy::DegradedFirstWith {
            locality_preservation: true,
            rack_awareness: false,
        }),
        "bdf+rack" => Ok(Policy::DegradedFirstWith {
            locality_preservation: false,
            rack_awareness: true,
        }),
        other => {
            let Some(secs) = other.strip_prefix("lf+delay:") else {
                return Err(format!(
                    "unknown policy `{other}` (expected lf|bdf|edf|bdf+locality|bdf+rack|lf+delay:SECS)"
                ));
            };
            let wait = secs
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("delay seconds `{secs}`: {e}"))?;
            if !(wait > 0.0 && wait.is_finite()) {
                return Err(format!(
                    "delay seconds must be positive and finite, got {wait}"
                ));
            }
            Ok(Policy::DelayScheduling {
                max_wait: SimDuration::from_secs_f64(wait),
            })
        }
    }
}

/// A full grid specification.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Cluster shape and engine tunables shared by every shard.
    pub base: SweepBase,
    /// Policy axis.
    pub policies: Vec<Policy>,
    /// `(n, k)` code axis.
    pub codes: Vec<(usize, usize)>,
    /// Failure axis.
    pub failures: Vec<FailureAxis>,
    /// Workload axis.
    pub workloads: Vec<WorkloadAxis>,
    /// Degraded-read fetch-policy axis (`exact` fetches precisely k
    /// blocks; `redundant:R` over-fetches R extras and cancels the
    /// stragglers). Excluded from scenario keys so exact and redundant
    /// shards replay identical realizations.
    pub fetch_policies: Vec<FetchPolicy>,
    /// Heterogeneous service-time axis. `homogeneous` leaves scenario
    /// keys untouched; any other profile joins the key.
    pub speeds: Vec<SpeedProfile>,
    /// Seed axis.
    pub seeds: Vec<u64>,
}

/// One cell of the expanded grid.
#[derive(Clone, Debug, PartialEq)]
pub struct Shard {
    /// Position in the canonical grid order.
    pub index: usize,
    /// Policy coordinate.
    pub policy: Policy,
    /// `(n, k)` code coordinate.
    pub code: (usize, usize),
    /// Failure coordinate.
    pub failure: FailureAxis,
    /// Workload coordinate.
    pub workload: WorkloadAxis,
    /// Fetch-policy coordinate.
    pub fetch: FetchPolicy,
    /// Speed-profile coordinate.
    pub speeds: SpeedProfile,
    /// Seed coordinate.
    pub seed: u64,
}

impl Shard {
    /// The canonical scenario key — every coordinate **except the
    /// policy and the fetch policy**, so LF/BDF/EDF shards (and
    /// exact-vs-redundant shards) of one scenario share a stream. The
    /// speed profile joins the key only when non-homogeneous, keeping
    /// golden stream seeds of pre-existing grids intact.
    pub fn scenario_key(&self, base: &SweepBase) -> String {
        let mut key = format!(
            "{}|code={},{}|failure={}|workload={}|seed={}",
            base.label(),
            self.code.0,
            self.code.1,
            self.failure.label(),
            self.workload.label(),
            self.seed
        );
        if self.speeds != SpeedProfile::Homogeneous {
            key.push_str(&format!("|speeds={}", self.speeds.label()));
        }
        key
    }

    /// The RNG stream seed: FNV-1a of the scenario key.
    pub fn stream_seed(&self, base: &SweepBase) -> u64 {
        fnv1a(self.scenario_key(base).as_bytes())
    }
}

fn check_unique(axis: &'static str, labels: &[String]) -> Result<(), SweepError> {
    for (i, a) in labels.iter().enumerate() {
        if labels[..i].contains(a) {
            return Err(SweepError::DuplicateAxisValue {
                axis,
                value: a.clone(),
            });
        }
    }
    Ok(())
}

impl SweepSpec {
    /// Hard cap on grid size; a typo'd seed range should fail loudly,
    /// not launch an unbounded run.
    pub const MAX_SHARDS: usize = 65_536;

    /// Validates every axis value and the base configuration.
    ///
    /// # Errors
    ///
    /// Any [`SweepError`] variant describing the first problem found.
    pub fn validate(&self) -> Result<(), SweepError> {
        self.base.validate()?;
        if self.policies.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "policies" });
        }
        if self.codes.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "codes" });
        }
        if self.failures.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "failures" });
        }
        if self.workloads.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "workloads" });
        }
        if self.fetch_policies.is_empty() {
            return Err(SweepError::EmptyAxis {
                axis: "fetch_policies",
            });
        }
        if self.speeds.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "speeds" });
        }
        if self.seeds.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "seeds" });
        }
        for fetch in &self.fetch_policies {
            if let FetchPolicy::Redundant { extra: 0 } = fetch {
                return Err(SweepError::BadAxisValue {
                    axis: "fetch",
                    reason: "redundant fetch needs extra >= 1 (that is just exact)".to_string(),
                });
            }
        }
        for speeds in &self.speeds {
            speeds
                .validate()
                .map_err(|reason| SweepError::BadAxisValue {
                    axis: "speeds",
                    reason,
                })?;
        }
        for &(n, k) in &self.codes {
            CodeParams::new(n, k).map_err(|e| SweepError::BadCode {
                n,
                k,
                reason: e.to_string(),
            })?;
            self.base.check_code_fits(n, k)?;
        }
        for f in &self.failures {
            f.validate()?;
        }
        for w in &self.workloads {
            w.validate()?;
        }
        check_unique(
            "policies",
            &self.policies.iter().map(policy_label).collect::<Vec<_>>(),
        )?;
        check_unique(
            "codes",
            &self
                .codes
                .iter()
                .map(|&(n, k)| format!("{n},{k}"))
                .collect::<Vec<_>>(),
        )?;
        check_unique(
            "failures",
            &self
                .failures
                .iter()
                .map(FailureAxis::label)
                .collect::<Vec<_>>(),
        )?;
        check_unique(
            "workloads",
            &self
                .workloads
                .iter()
                .map(WorkloadAxis::label)
                .collect::<Vec<_>>(),
        )?;
        check_unique(
            "fetch_policies",
            &self
                .fetch_policies
                .iter()
                .map(FetchPolicy::label)
                .collect::<Vec<_>>(),
        )?;
        check_unique(
            "speeds",
            &self
                .speeds
                .iter()
                .map(SpeedProfile::label)
                .collect::<Vec<_>>(),
        )?;
        check_unique(
            "seeds",
            &self.seeds.iter().map(u64::to_string).collect::<Vec<_>>(),
        )?;
        let shards = self
            .policies
            .len()
            .saturating_mul(self.codes.len())
            .saturating_mul(self.failures.len())
            .saturating_mul(self.workloads.len())
            .saturating_mul(self.fetch_policies.len())
            .saturating_mul(self.speeds.len())
            .saturating_mul(self.seeds.len());
        if shards > Self::MAX_SHARDS {
            return Err(SweepError::TooManyShards {
                shards,
                cap: Self::MAX_SHARDS,
            });
        }
        Ok(())
    }

    /// Validates and expands the grid in canonical order:
    /// policy → code → failure → workload → fetch → speeds → seed.
    /// Policy stays outermost — the report's scenario grouping depends
    /// on it.
    ///
    /// # Errors
    ///
    /// Everything [`SweepSpec::validate`] reports.
    pub fn shards(&self) -> Result<Vec<Shard>, SweepError> {
        self.validate()?;
        let mut out = Vec::with_capacity(
            self.policies.len()
                * self.codes.len()
                * self.failures.len()
                * self.workloads.len()
                * self.fetch_policies.len()
                * self.speeds.len()
                * self.seeds.len(),
        );
        for policy in &self.policies {
            for &code in &self.codes {
                for failure in &self.failures {
                    for workload in &self.workloads {
                        for &fetch in &self.fetch_policies {
                            for &speeds in &self.speeds {
                                for &seed in &self.seeds {
                                    out.push(Shard {
                                        index: out.len(),
                                        policy: *policy,
                                        code,
                                        failure: failure.clone(),
                                        workload: workload.clone(),
                                        fetch,
                                        speeds,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

fn spec_err(line: usize, reason: impl Into<String>) -> SweepError {
    SweepError::Spec {
        line,
        reason: reason.into(),
    }
}

fn base_field_usize(
    obj: &Json,
    key: &str,
    line: usize,
    default: usize,
) -> Result<usize, SweepError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => {
            let x = v
                .as_f64()
                .ok_or_else(|| spec_err(line, format!("base.{key} must be a number")))?;
            if x < 0.0 || x.fract() != 0.0 || x > u32::MAX as f64 {
                return Err(spec_err(
                    line,
                    format!("base.{key} must be a non-negative integer, got {x}"),
                ));
            }
            Ok(x as usize)
        }
    }
}

/// Parses a JSONL sweep specification. Each non-empty line is one JSON
/// object:
///
/// * `{"base": {"racks": 4, "nodes_per_rack": 4, ...}}` — overrides
///   fields of [`SweepBase::fig7_small`] (at most one such line);
/// * `{"axis": "policy", "value": "lf"}` — appends an axis value; the
///   value strings use the same tokens as the CLI flags
///   (`lf|bdf|edf|...`, `N,K`, `none|node|double|rack|weibull[:...]`,
///   `default|maponly:SECS|poisson:JOBSxMEAN`,
///   `exact|redundant:R`, `homogeneous|slowdisk:F,F|stragglers:C,F|hot:C,F`);
/// * `{"axis": "seed", "value": 7}` — appends one seed;
/// * `{"axis": "seeds", "count": 3}` — appends seeds `1..=3`.
///
/// The `fetch` and `speed` axes default to `exact` / `homogeneous` when
/// a spec never mentions them, so pre-existing spec files expand to the
/// same grids as before.
///
/// # Errors
///
/// [`SweepError::Spec`] with a 1-based line number for any malformed
/// line. The returned spec is *not* yet validated — [`SweepSpec::shards`]
/// performs semantic validation.
pub fn parse_spec_jsonl(text: &str) -> Result<SweepSpec, SweepError> {
    let mut spec = SweepSpec {
        base: SweepBase::fig7_small(),
        policies: Vec::new(),
        codes: Vec::new(),
        failures: Vec::new(),
        workloads: Vec::new(),
        fetch_policies: Vec::new(),
        speeds: Vec::new(),
        seeds: Vec::new(),
    };
    let mut saw_base = false;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let doc = Json::parse(trimmed).map_err(|e| spec_err(line, e.to_string()))?;
        if let Some(base) = doc.get("base") {
            if saw_base {
                return Err(spec_err(line, "duplicate base line"));
            }
            saw_base = true;
            let Json::Object(map) = base else {
                return Err(spec_err(line, "base must be an object"));
            };
            const KNOWN: [&str; 8] = [
                "racks",
                "nodes_per_rack",
                "map_slots",
                "reduce_slots",
                "num_blocks",
                "block_bytes",
                "node_mbps",
                "rack_mbps",
            ];
            for key in map.keys() {
                if !KNOWN.contains(&key.as_str()) {
                    return Err(spec_err(line, format!("unknown base field `{key}`")));
                }
            }
            let d = spec.base.clone();
            spec.base = SweepBase {
                racks: base_field_usize(base, "racks", line, d.racks)?,
                nodes_per_rack: base_field_usize(base, "nodes_per_rack", line, d.nodes_per_rack)?,
                map_slots: base_field_usize(base, "map_slots", line, d.map_slots as usize)? as u32,
                reduce_slots: base_field_usize(base, "reduce_slots", line, d.reduce_slots as usize)?
                    as u32,
                num_blocks: base_field_usize(base, "num_blocks", line, d.num_blocks)?,
                block_bytes: {
                    match base.get("block_bytes") {
                        None => d.block_bytes,
                        Some(v) => {
                            let x = v.as_f64().ok_or_else(|| {
                                spec_err(line, "base.block_bytes must be a number")
                            })?;
                            if x < 1.0 || x.fract() != 0.0 {
                                return Err(spec_err(
                                    line,
                                    format!("base.block_bytes must be a positive integer, got {x}"),
                                ));
                            }
                            x as u64
                        }
                    }
                },
                node_mbps: base_field_usize(base, "node_mbps", line, d.node_mbps as usize)? as u64,
                rack_mbps: base_field_usize(base, "rack_mbps", line, d.rack_mbps as usize)? as u64,
            };
            continue;
        }
        let Some(axis) = doc.get("axis").and_then(Json::as_str) else {
            return Err(spec_err(
                line,
                "expected an object with `axis` (or a single `base` object)",
            ));
        };
        match axis {
            "policy" | "code" | "failure" | "workload" | "fetch" | "speed" => {
                let Some(value) = doc.get("value").and_then(Json::as_str) else {
                    return Err(spec_err(
                        line,
                        format!("axis `{axis}` needs a string `value`"),
                    ));
                };
                match axis {
                    "policy" => spec
                        .policies
                        .push(parse_policy(value).map_err(|e| spec_err(line, e))?),
                    "code" => spec
                        .codes
                        .push(parse_code(value).map_err(|e| spec_err(line, e))?),
                    "failure" => spec
                        .failures
                        .push(FailureAxis::parse(value).map_err(|e| spec_err(line, e))?),
                    "fetch" => spec
                        .fetch_policies
                        .push(FetchPolicy::parse(value).map_err(|e| spec_err(line, e))?),
                    "speed" => spec
                        .speeds
                        .push(SpeedProfile::parse(value).map_err(|e| spec_err(line, e))?),
                    _ => spec
                        .workloads
                        .push(WorkloadAxis::parse(value).map_err(|e| spec_err(line, e))?),
                }
            }
            "seed" => {
                let Some(value) = doc.get("value").and_then(Json::as_f64) else {
                    return Err(spec_err(line, "axis `seed` needs a numeric `value`"));
                };
                if value < 0.0 || value.fract() != 0.0 {
                    return Err(spec_err(
                        line,
                        format!("seed must be a non-negative integer, got {value}"),
                    ));
                }
                spec.seeds.push(value as u64);
            }
            "seeds" => {
                let Some(count) = doc.get("count").and_then(Json::as_f64) else {
                    return Err(spec_err(line, "axis `seeds` needs a numeric `count`"));
                };
                if count < 1.0 || count.fract() != 0.0 || count > Shard::MAX_SEED_COUNT as f64 {
                    return Err(spec_err(
                        line,
                        format!(
                            "seeds count must be an integer in 1..={}, got {count}",
                            Shard::MAX_SEED_COUNT
                        ),
                    ));
                }
                spec.seeds.extend(1..=count as u64);
            }
            other => {
                return Err(spec_err(
                    line,
                    format!(
                        "unknown axis `{other}` \
                         (expected policy|code|failure|workload|fetch|speed|seed|seeds)"
                    ),
                ));
            }
        }
    }
    if spec.fetch_policies.is_empty() {
        spec.fetch_policies.push(FetchPolicy::Exact);
    }
    if spec.speeds.is_empty() {
        spec.speeds.push(SpeedProfile::Homogeneous);
    }
    Ok(spec)
}

impl Shard {
    /// Cap on `{"axis":"seeds","count":N}` expansion, matching the
    /// overall shard cap.
    pub const MAX_SEED_COUNT: usize = SweepSpec::MAX_SHARDS;
}

/// Parses an `N,K` code token.
pub fn parse_code(token: &str) -> Result<(usize, usize), String> {
    let Some((n, k)) = token.split_once(',') else {
        return Err(format!("code must be `N,K`, got `{token}`"));
    };
    let n = n
        .trim()
        .parse::<usize>()
        .map_err(|e| format!("code n `{n}`: {e}"))?;
    let k = k
        .trim()
        .parse::<usize>()
        .map_err(|e| format!("code k `{k}`: {e}"))?;
    Ok((n, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> SweepSpec {
        SweepSpec {
            base: SweepBase::fig7_small(),
            policies: vec![Policy::LocalityFirst, Policy::EnhancedDegradedFirst],
            codes: vec![(8, 6), (12, 9)],
            failures: vec![FailureAxis::SingleNode],
            workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
            fetch_policies: vec![FetchPolicy::Exact],
            speeds: vec![SpeedProfile::Homogeneous],
            seeds: vec![1, 2],
        }
    }

    #[test]
    fn expansion_is_in_grid_order() {
        let shards = two_by_two().shards().expect("valid spec");
        assert_eq!(shards.len(), 8);
        assert_eq!(shards[0].policy, Policy::LocalityFirst);
        assert_eq!(shards[0].code, (8, 6));
        assert_eq!(shards[0].seed, 1);
        assert_eq!(shards[1].seed, 2);
        assert_eq!(shards[2].code, (12, 9));
        assert_eq!(shards[4].policy, Policy::EnhancedDegradedFirst);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn stream_seed_ignores_policy() {
        let base = SweepBase::fig7_small();
        let shards = two_by_two().shards().expect("valid spec");
        // Shard 0 (LF) and shard 4 (EDF) share every other coordinate.
        assert_eq!(shards[0].code, shards[4].code);
        assert_eq!(shards[0].seed, shards[4].seed);
        assert_eq!(shards[0].stream_seed(&base), shards[4].stream_seed(&base));
        // Different seed, different stream.
        assert_ne!(shards[0].stream_seed(&base), shards[1].stream_seed(&base));
    }

    #[test]
    fn stream_seed_ignores_fetch_policy_but_not_speeds() {
        let base = SweepBase::fig7_small();
        let mut spec = two_by_two();
        spec.fetch_policies = vec![FetchPolicy::Exact, FetchPolicy::Redundant { extra: 2 }];
        let shards = spec.shards().expect("valid spec");
        // Adjacent shards differ only in fetch policy (fetch is between
        // workload and seed in grid order, with two seeds innermost).
        assert_eq!(shards[0].fetch, FetchPolicy::Exact);
        assert_eq!(shards[2].fetch, FetchPolicy::Redundant { extra: 2 });
        assert_eq!(shards[0].seed, shards[2].seed);
        assert_eq!(shards[0].stream_seed(&base), shards[2].stream_seed(&base));
        // The homogeneous profile leaves the key byte-identical to the
        // pre-axis format...
        assert!(!shards[0].scenario_key(&base).contains("speeds="));
        // ...while a real profile changes the stream.
        let mut slow = shards[0].clone();
        slow.speeds = SpeedProfile::Stragglers {
            count: 2,
            factor: 0.25,
        };
        assert!(slow
            .scenario_key(&base)
            .contains("speeds=stragglers:2,0.25"));
        assert_ne!(slow.stream_seed(&base), shards[0].stream_seed(&base));
    }

    #[test]
    fn fetch_and_speed_axes_are_validated() {
        let mut spec = two_by_two();
        spec.fetch_policies = vec![FetchPolicy::Redundant { extra: 0 }];
        assert!(matches!(
            spec.validate(),
            Err(SweepError::BadAxisValue { axis: "fetch", .. })
        ));

        let mut spec = two_by_two();
        spec.speeds = vec![SpeedProfile::SlowDisk {
            fraction: 2.0,
            factor: 0.5,
        }];
        assert!(matches!(
            spec.validate(),
            Err(SweepError::BadAxisValue { axis: "speeds", .. })
        ));

        let mut spec = two_by_two();
        spec.fetch_policies.clear();
        assert_eq!(
            spec.validate(),
            Err(SweepError::EmptyAxis {
                axis: "fetch_policies"
            })
        );

        let mut spec = two_by_two();
        spec.speeds.push(SpeedProfile::Homogeneous);
        assert!(matches!(
            spec.validate(),
            Err(SweepError::DuplicateAxisValue { axis: "speeds", .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = two_by_two();
        spec.policies.clear();
        assert_eq!(
            spec.validate(),
            Err(SweepError::EmptyAxis { axis: "policies" })
        );

        let mut spec = two_by_two();
        spec.codes.push((3, 9));
        assert!(matches!(
            spec.validate(),
            Err(SweepError::BadCode { n: 3, k: 9, .. })
        ));

        // Valid codes that cannot sit on the 4-rack base are rejected
        // at spec time with the rack cap named, not mid-sweep.
        let mut spec = two_by_two();
        spec.codes = vec![(12, 10)];
        let err = spec.validate().expect_err("cap violation");
        assert!(matches!(err, SweepError::CodeTopology { n: 12, k: 10, .. }));
        assert!(err.to_string().contains("n-k = 2"), "{err}");

        let mut spec = two_by_two();
        spec.codes = vec![(4, 3)]; // parity 1 < rack-aware floor of 2
        assert!(matches!(
            spec.validate(),
            Err(SweepError::CodeTopology { n: 4, k: 3, .. })
        ));

        let mut spec = two_by_two();
        spec.codes = vec![(16, 13)]; // fits exactly: 16 nodes, 4*3 >= 16? no
        assert!(matches!(
            spec.validate(),
            Err(SweepError::CodeTopology { n: 16, k: 13, .. })
        ));
        spec.codes = vec![(16, 12)]; // 4 racks * parity 4 = 16: just fits
        assert!(spec.validate().is_ok());

        let mut spec = two_by_two();
        spec.codes = vec![(20, 15)]; // wider than the 16-node cluster
        assert!(matches!(
            spec.validate(),
            Err(SweepError::CodeTopology { n: 20, k: 15, .. })
        ));

        let mut spec = two_by_two();
        spec.seeds.push(1);
        assert!(matches!(
            spec.validate(),
            Err(SweepError::DuplicateAxisValue { axis: "seeds", .. })
        ));

        let mut spec = two_by_two();
        spec.base.racks = 0;
        assert_eq!(
            spec.validate(),
            Err(SweepError::BadBase {
                field: "racks",
                value: 0
            })
        );

        let mut spec = two_by_two();
        spec.failures = vec![FailureAxis::Weibull(WeibullChurn {
            lifetime_shape: -1.0,
            lifetime_scale_secs: 10.0,
            repair_shape: 1.0,
            repair_scale_secs: 10.0,
            horizon_secs: 100.0,
        })];
        assert!(matches!(
            spec.validate(),
            Err(SweepError::BadChurn {
                field: "lifetime_shape",
                ..
            })
        ));

        let mut spec = two_by_two();
        spec.seeds = (0..40_000).collect();
        assert!(matches!(
            spec.validate(),
            Err(SweepError::TooManyShards { .. })
        ));
    }

    #[test]
    fn axis_tokens_round_trip() {
        for token in ["none", "node", "double", "rack"] {
            let axis = FailureAxis::parse(token).expect("parse");
            assert_eq!(axis.label(), token);
        }
        let weibull = FailureAxis::parse("weibull:1.2,28800,1,75,600").expect("parse");
        assert_eq!(
            weibull.label(),
            "weibull(shape=1.2,life=28800,rshape=1,repair=75,horizon=600)"
        );
        assert!(FailureAxis::parse("weibull:1,2").is_err());
        assert!(FailureAxis::parse("meteor").is_err());

        assert_eq!(
            WorkloadAxis::parse("default").expect("parse").label(),
            "default"
        );
        assert_eq!(
            WorkloadAxis::parse("maponly:10").expect("parse").label(),
            "maponly(10)"
        );
        assert_eq!(
            WorkloadAxis::parse("poisson:10x120")
                .expect("parse")
                .label(),
            "poisson(10x120)"
        );
        assert!(WorkloadAxis::parse("poisson:10").is_err());

        assert_eq!(parse_code("8,6").expect("parse"), (8, 6));
        assert!(parse_code("8").is_err());

        assert_eq!(policy_label(&parse_policy("lf").expect("parse")), "LF");
        assert_eq!(
            policy_label(&parse_policy("lf+delay:6").expect("parse")),
            "LF+delay(6)"
        );
        assert!(parse_policy("fifo").is_err());
    }

    #[test]
    fn jsonl_spec_parses() {
        let text = r#"
            {"base": {"racks": 4, "nodes_per_rack": 4, "rack_mbps": 100}}
            {"axis": "policy", "value": "lf"}
            {"axis": "policy", "value": "edf"}
            {"axis": "code", "value": "8,6"}
            {"axis": "failure", "value": "node"}
            {"axis": "workload", "value": "maponly:10"}
            {"axis": "seeds", "count": 3}
            {"axis": "seed", "value": 9}
        "#;
        let spec = parse_spec_jsonl(text).expect("valid spec");
        assert_eq!(spec.base.racks, 4);
        assert_eq!(spec.base.rack_mbps, 100);
        assert_eq!(spec.policies.len(), 2);
        assert_eq!(spec.codes, vec![(8, 6)]);
        assert_eq!(spec.seeds, vec![1, 2, 3, 9]);
        // Unmentioned fetch/speed axes default to their neutral values.
        assert_eq!(spec.fetch_policies, vec![FetchPolicy::Exact]);
        assert_eq!(spec.speeds, vec![SpeedProfile::Homogeneous]);
        assert_eq!(spec.shards().expect("expand").len(), 8);
    }

    #[test]
    fn jsonl_spec_parses_fetch_and_speed_axes() {
        let text = r#"
            {"axis": "policy", "value": "edf"}
            {"axis": "code", "value": "8,6"}
            {"axis": "failure", "value": "node"}
            {"axis": "workload", "value": "maponly:10"}
            {"axis": "fetch", "value": "exact"}
            {"axis": "fetch", "value": "redundant:2"}
            {"axis": "speed", "value": "stragglers:2,0.25"}
            {"axis": "seed", "value": 1}
        "#;
        let spec = parse_spec_jsonl(text).expect("valid spec");
        assert_eq!(
            spec.fetch_policies,
            vec![FetchPolicy::Exact, FetchPolicy::Redundant { extra: 2 }]
        );
        assert_eq!(
            spec.speeds,
            vec![SpeedProfile::Stragglers {
                count: 2,
                factor: 0.25
            }]
        );
        assert_eq!(spec.shards().expect("expand").len(), 2);
        assert!(matches!(
            parse_spec_jsonl("{\"axis\": \"fetch\", \"value\": \"redundant:0\"}"),
            Err(SweepError::Spec { line: 1, .. })
        ));
        assert!(matches!(
            parse_spec_jsonl("{\"axis\": \"speed\", \"value\": \"warp9\"}"),
            Err(SweepError::Spec { line: 1, .. })
        ));
    }

    #[test]
    fn jsonl_spec_rejects_malformed_lines() {
        assert!(matches!(
            parse_spec_jsonl("{"),
            Err(SweepError::Spec { line: 1, .. })
        ));
        assert!(matches!(
            parse_spec_jsonl("{\"axis\": \"colour\", \"value\": \"red\"}"),
            Err(SweepError::Spec { line: 1, .. })
        ));
        assert!(matches!(
            parse_spec_jsonl("{\"axis\": \"seed\", \"value\": 1.5}"),
            Err(SweepError::Spec { line: 1, .. })
        ));
        assert!(matches!(
            parse_spec_jsonl("{\"base\": {\"warp\": 9}}"),
            Err(SweepError::Spec { line: 1, .. })
        ));
        let two_bases = "{\"base\": {}}\n{\"base\": {}}";
        assert!(matches!(
            parse_spec_jsonl(two_bases),
            Err(SweepError::Spec { line: 2, .. })
        ));
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn scale_10k_base_is_valid_and_big() {
        let base = SweepBase::scale_10k();
        assert!(base.validate().is_ok());
        assert_eq!(base.racks * base.nodes_per_rack, 10_000);
        for k in [6, 10, 15] {
            assert_eq!(base.num_blocks % k, 0, "blocks must divide under k={k}");
        }
    }
}
