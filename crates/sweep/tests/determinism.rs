//! The sweep determinism contract: the merged report is byte-identical
//! regardless of thread count (and hence of shard execution order).

use dfs::cluster::SpeedProfile;
use dfs::ecstore::FetchPolicy;
use dfs::Policy;
use sweep::{run_sweep, FailureAxis, SweepBase, SweepSpec, WorkloadAxis};

fn grid() -> SweepSpec {
    SweepSpec {
        base: SweepBase::fig7_small(),
        policies: vec![Policy::LocalityFirst, Policy::EnhancedDegradedFirst],
        codes: vec![(8, 6)],
        failures: vec![FailureAxis::SingleNode],
        workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
        fetch_policies: vec![FetchPolicy::Exact],
        speeds: vec![SpeedProfile::Homogeneous],
        seeds: vec![1, 2, 3],
    }
}

#[test]
fn merged_report_is_byte_identical_across_thread_counts() {
    let spec = grid();
    let one = run_sweep(&spec, 1).expect("1-thread sweep");
    let four = run_sweep(&spec, 4).expect("4-thread sweep");
    let eight = run_sweep(&spec, 8).expect("8-thread sweep");
    assert_eq!(one.to_json(), four.to_json(), "1 vs 4 threads");
    assert_eq!(one.to_json(), eight.to_json(), "1 vs 8 threads");
    assert_eq!(one.human(), four.human(), "1 vs 4 threads (human)");
    assert_eq!(one.human(), eight.human(), "1 vs 8 threads (human)");
}

#[test]
fn rerun_is_byte_identical() {
    let spec = grid();
    let a = run_sweep(&spec, 4).expect("first run");
    let b = run_sweep(&spec, 4).expect("second run");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.human(), b.human());
}

#[test]
fn weibull_churn_shards_are_deterministic_across_threads() {
    let spec = SweepSpec {
        base: SweepBase::fig7_small(),
        policies: vec![Policy::LocalityFirst, Policy::EnhancedDegradedFirst],
        codes: vec![(8, 6)],
        failures: vec![FailureAxis::parse("weibull:1.2,2000,1,60,300").expect("valid churn")],
        workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
        fetch_policies: vec![FetchPolicy::Exact],
        speeds: vec![SpeedProfile::Homogeneous],
        seeds: vec![7],
    };
    let one = run_sweep(&spec, 1).expect("1-thread sweep");
    let three = run_sweep(&spec, 3).expect("3-thread sweep");
    assert_eq!(one.to_json(), three.to_json());
    // Both policies replayed the same churn timeline (scenario-keyed
    // stream), so their degraded workloads agree.
    let lf = one.shards[0].metrics.as_ref().expect("LF ok");
    let edf = one.shards[1].metrics.as_ref().expect("EDF ok");
    assert_eq!(lf.stream_seed, edf.stream_seed);
    assert_eq!(lf.maps_total, edf.maps_total);
}

#[test]
fn redundant_fetch_with_stragglers_is_byte_identical_across_threads() {
    let spec = SweepSpec {
        base: SweepBase::fig7_small(),
        policies: vec![Policy::LocalityFirst, Policy::EnhancedDegradedFirst],
        codes: vec![(8, 6)],
        failures: vec![FailureAxis::SingleNode],
        workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
        fetch_policies: vec![FetchPolicy::Exact, FetchPolicy::Redundant { extra: 2 }],
        speeds: vec![SpeedProfile::parse("stragglers:3,0.25").expect("valid profile")],
        seeds: vec![1, 2],
    };
    let one = run_sweep(&spec, 1).expect("1-thread sweep");
    let four = run_sweep(&spec, 4).expect("4-thread sweep");
    assert_eq!(one.to_json(), four.to_json(), "1 vs 4 threads");
    assert_eq!(one.human(), four.human(), "1 vs 4 threads (human)");
    // The fetch axis is live, so the report surfaces it.
    assert!(one.to_json().contains("\"fetch\": \"redundant:2\""));
    assert!(one.to_json().contains("\"speeds\": \"stragglers:3,0.25\""));
    // Fetch policy never shifts the scenario RNG stream: the exact and
    // redundant shards of the same scenario share a stream seed.
    let exact = one.shards[0].metrics.as_ref().expect("exact ok");
    let redundant = one.shards[2].metrics.as_ref().expect("redundant ok");
    assert_eq!(exact.stream_seed, redundant.stream_seed);
}
