//! Golden LF/BDF/EDF grid report on the Figure-7 small preset. The
//! checked-in bytes are the determinism contract for the whole sweep
//! pipeline: spec expansion, scenario-keyed RNG streams, simulation,
//! aggregation, merge and rendering.
//!
//! Regenerate with `UPDATE_GOLDENS=1 cargo test -p sweep --test
//! golden_grid` after an intentional behavior change, and review the
//! diff like code.

use dfs::cluster::SpeedProfile;
use dfs::ecstore::FetchPolicy;
use dfs::Policy;
use std::path::PathBuf;
use sweep::{run_sweep, FailureAxis, SweepBase, SweepSpec, WorkloadAxis};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}; run with UPDATE_GOLDENS=1", name));
    assert_eq!(
        expected, actual,
        "golden {name} drifted; if intentional, regenerate with UPDATE_GOLDENS=1 and review the diff"
    );
}

fn fig7_small_grid() -> SweepSpec {
    SweepSpec {
        base: SweepBase::fig7_small(),
        policies: vec![
            Policy::LocalityFirst,
            Policy::BasicDegradedFirst,
            Policy::EnhancedDegradedFirst,
        ],
        codes: vec![(8, 6)],
        failures: vec![FailureAxis::SingleNode],
        workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
        fetch_policies: vec![FetchPolicy::Exact],
        speeds: vec![SpeedProfile::Homogeneous],
        seeds: vec![1, 2, 3],
    }
}

#[test]
fn fig7_small_grid_matches_goldens() {
    let report = run_sweep(&fig7_small_grid(), 4).expect("sweep runs");
    assert_eq!(report.shards.len(), 9);
    assert_eq!(report.shards_ok(), 9, "every shard should complete");
    check_golden("fig7_small_grid.json", &report.to_json());
    check_golden("fig7_small_grid.txt", &report.human());
}
