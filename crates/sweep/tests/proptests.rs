//! Property tests for shard stream seeding: a shard's RNG stream is a
//! pure function of its coordinate *values* — independent of grid
//! enumeration order and of the policy coordinate.

use dfs::cluster::SpeedProfile;
use dfs::ecstore::FetchPolicy;
use dfs::Policy;
use proptest::prelude::*;
use sweep::{fnv1a, FailureAxis, SweepBase, SweepSpec, WorkloadAxis};

/// Selects the non-empty subset of `all` encoded by a bitmask (the
/// vendored proptest has no `sample::subsequence`).
fn subset<T: Clone>(all: &[T], mask: u32) -> Vec<T> {
    all.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, v)| v.clone())
        .collect()
}

fn arb_policies() -> impl Strategy<Value = Vec<Policy>> {
    (1u32..8).prop_map(|mask| {
        subset(
            &[
                Policy::LocalityFirst,
                Policy::BasicDegradedFirst,
                Policy::EnhancedDegradedFirst,
            ],
            mask,
        )
    })
}

fn arb_codes() -> impl Strategy<Value = Vec<(usize, usize)>> {
    // All four fit fig7_small (4 racks × 4 nodes) under the rack-aware
    // placement cap n ≤ racks·(n−k), which specs now validate eagerly.
    (1u32..16).prop_map(|mask| subset(&[(8, 6), (12, 9), (16, 12), (9, 6)], mask))
}

fn arb_failures() -> impl Strategy<Value = Vec<FailureAxis>> {
    (1u32..16).prop_map(|mask| {
        subset(
            &[
                FailureAxis::None,
                FailureAxis::SingleNode,
                FailureAxis::DoubleNode,
                FailureAxis::Rack,
            ],
            mask,
        )
    })
}

fn arb_seeds() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::btree_set(0u64..1000, 1..5)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_seeds_are_value_keyed_not_position_keyed(
        policies in arb_policies(),
        codes in arb_codes(),
        failures in arb_failures(),
        seeds in arb_seeds(),
    ) {
        let base = SweepBase::fig7_small();
        let spec = SweepSpec {
            base: base.clone(),
            policies: policies.clone(),
            codes: codes.clone(),
            failures: failures.clone(),
            workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
            fetch_policies: vec![FetchPolicy::Exact],
            speeds: vec![SpeedProfile::Homogeneous],
            seeds: seeds.clone(),
        };
        // The same axes enumerated in reversed order.
        let reversed = SweepSpec {
            base: base.clone(),
            policies: policies.iter().rev().cloned().collect(),
            codes: codes.iter().rev().cloned().collect(),
            failures: failures.iter().rev().cloned().collect(),
            workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
            fetch_policies: vec![FetchPolicy::Exact],
            speeds: vec![SpeedProfile::Homogeneous],
            seeds: seeds.iter().rev().cloned().collect(),
        };
        let forward = spec.shards().expect("valid spec");
        let backward = reversed.shards().expect("valid spec");
        prop_assert_eq!(forward.len(), backward.len());
        // Key -> stream seed maps agree: the grid position never leaks
        // into the stream.
        let mut fwd: Vec<(String, u64)> = forward
            .iter()
            .map(|s| (s.scenario_key(&base), s.stream_seed(&base)))
            .collect();
        let mut bwd: Vec<(String, u64)> = backward
            .iter()
            .map(|s| (s.scenario_key(&base), s.stream_seed(&base)))
            .collect();
        fwd.sort();
        bwd.sort();
        prop_assert_eq!(fwd, bwd);
    }

    #[test]
    fn policy_never_perturbs_the_scenario_stream(
        codes in arb_codes(),
        failures in arb_failures(),
        seeds in arb_seeds(),
    ) {
        let base = SweepBase::fig7_small();
        let make = |policies: Vec<Policy>, fetch_policies: Vec<FetchPolicy>| SweepSpec {
            base: base.clone(),
            policies,
            codes: codes.clone(),
            failures: failures.clone(),
            workloads: vec![WorkloadAxis::Default],
            fetch_policies,
            speeds: vec![SpeedProfile::Homogeneous],
            seeds: seeds.clone(),
        };
        let lf_only = make(vec![Policy::LocalityFirst], vec![FetchPolicy::Exact])
            .shards()
            .expect("valid");
        let all = make(
            vec![
                Policy::LocalityFirst,
                Policy::BasicDegradedFirst,
                Policy::EnhancedDegradedFirst,
            ],
            vec![FetchPolicy::Exact],
        )
        .shards()
        .expect("valid");
        let scenarios = lf_only.len();
        // Every policy block reproduces exactly the LF block's streams.
        for (i, shard) in all.iter().enumerate() {
            let peer = &lf_only[i % scenarios];
            prop_assert_eq!(shard.scenario_key(&base), peer.scenario_key(&base));
            prop_assert_eq!(shard.stream_seed(&base), peer.stream_seed(&base));
        }
        // The fetch-policy axis is a scheduling concern like the policy
        // axis: it must never shift the scenario stream either.
        let fetches = make(
            vec![Policy::LocalityFirst],
            vec![
                FetchPolicy::Exact,
                FetchPolicy::Redundant { extra: 1 },
                FetchPolicy::Redundant { extra: 3 },
            ],
        )
        .shards()
        .expect("valid");
        for (i, shard) in fetches.iter().enumerate() {
            // Grid order nests fetch inside each scenario prefix and
            // outside the seed axis; recover the peer by coordinates.
            let peer = lf_only
                .iter()
                .find(|p| {
                    p.code == shard.code && p.failure == shard.failure && p.seed == shard.seed
                })
                .unwrap_or_else(|| panic!("no exact-fetch peer for shard {i}"));
            prop_assert_eq!(shard.scenario_key(&base), peer.scenario_key(&base));
            prop_assert_eq!(shard.stream_seed(&base), peer.stream_seed(&base));
        }
    }

    #[test]
    fn stream_seed_is_exactly_fnv1a_of_the_key(
        seed in 0u64..10_000,
    ) {
        let base = SweepBase::fig7_small();
        let spec = SweepSpec {
            base: base.clone(),
            policies: vec![Policy::LocalityFirst],
            codes: vec![(8, 6)],
            failures: vec![FailureAxis::SingleNode],
            workloads: vec![WorkloadAxis::Default],
            fetch_policies: vec![FetchPolicy::Exact],
            speeds: vec![SpeedProfile::Homogeneous],
            seeds: vec![seed],
        };
        let shards = spec.shards().expect("valid");
        prop_assert_eq!(
            shards[0].stream_seed(&base),
            fnv1a(shards[0].scenario_key(&base).as_bytes())
        );
    }
}
