//! Deterministic synthetic English-like text — the Project Gutenberg
//! substitute (see DESIGN.md's substitution table).
//!
//! The generator produces newline-terminated sentences drawn from a
//! fixed vocabulary with a Zipf-flavoured distribution, so WordCount
//! sees realistic head/tail word frequencies, Grep has a predictable
//! match rate, and LineCount sees mostly-unique lines with occasional
//! repeats.

use simkit::SimRng;

/// The fixed vocabulary; ordered roughly by intended frequency.
const VOCABULARY: &[&str] = &[
    "the", "of", "and", "to", "a", "in", "that", "was", "he", "it", "his", "is", "with", "as",
    "for", "had", "you", "not", "be", "her", "on", "at", "by", "which", "have", "or", "from",
    "this", "him", "but", "all", "she", "they", "were", "my", "are", "me", "one", "their", "so",
    "an", "said", "them", "we", "who", "would", "been", "will", "no", "when", "there", "if",
    "more", "out", "up", "into", "do", "any", "your", "what", "has", "man", "could", "other",
    "than", "our", "some", "very", "time", "upon", "about", "may", "its", "only", "now", "like",
    "little", "then", "can", "made", "should", "did", "us", "such", "great", "before", "must",
    "two", "these", "see", "know", "over", "much", "down", "after", "first", "mr", "good", "men",
    "whale", "ship", "sea", "captain", "white", "boat", "water", "storm", "harpoon", "voyage",
];

/// Builds deterministic corpora.
///
/// # Example
///
/// ```
/// use textlab::corpus::CorpusBuilder;
/// let a = CorpusBuilder::new(1).lines(10).build();
/// let b = CorpusBuilder::new(1).lines(10).build();
/// assert_eq!(a, b);
/// assert_eq!(a.iter().filter(|&&c| c == b'\n').count(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    seed: u64,
    lines: usize,
    words_per_line: (usize, usize),
    repeat_line_every: usize,
}

impl CorpusBuilder {
    /// Creates a builder with the given seed; defaults to 1000 lines of
    /// 5–15 words, with every 50th line repeated verbatim (so LineCount
    /// has duplicates to count).
    pub fn new(seed: u64) -> CorpusBuilder {
        CorpusBuilder {
            seed,
            lines: 1000,
            words_per_line: (5, 15),
            repeat_line_every: 50,
        }
    }

    /// Sets the number of lines.
    pub fn lines(mut self, lines: usize) -> CorpusBuilder {
        self.lines = lines;
        self
    }

    /// Sets the min/max words per line.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    pub fn words_per_line(mut self, min: usize, max: usize) -> CorpusBuilder {
        assert!(
            min > 0 && min <= max,
            "bad words-per-line range {min}..{max}"
        );
        self.words_per_line = (min, max);
        self
    }

    /// Generates the corpus as newline-terminated UTF-8 bytes.
    pub fn build(&self) -> Vec<u8> {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut last_line: Vec<u8> = Vec::new();
        for i in 0..self.lines {
            if self.repeat_line_every > 0
                && i > 0
                && i % self.repeat_line_every == 0
                && !last_line.is_empty()
            {
                out.extend_from_slice(&last_line);
                out.push(b'\n');
                continue;
            }
            let (min, max) = self.words_per_line;
            let count = min + rng.below(max - min + 1);
            let mut line = Vec::new();
            for w in 0..count {
                if w > 0 {
                    line.push(b' ');
                }
                line.extend_from_slice(zipf_word(&mut rng).as_bytes());
            }
            out.extend_from_slice(&line);
            out.push(b'\n');
            last_line = line;
        }
        out
    }
}

/// Draws a word with a Zipf-flavoured distribution: rank `r` has weight
/// `1/(r+1)`, approximated by rejection-free inverse mapping on a squared
/// uniform variate.
fn zipf_word(rng: &mut SimRng) -> &'static str {
    // u^2 concentrates mass near 0, i.e. near the head of the vocabulary.
    let u = rng.uniform_f64();
    let idx = ((u * u) * VOCABULARY.len() as f64) as usize;
    VOCABULARY[idx.min(VOCABULARY.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_per_seed() {
        let a = CorpusBuilder::new(5).lines(100).build();
        let b = CorpusBuilder::new(5).lines(100).build();
        let c = CorpusBuilder::new(6).lines(100).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn line_count_matches() {
        let text = CorpusBuilder::new(1).lines(250).build();
        assert_eq!(text.iter().filter(|&&c| c == b'\n').count(), 250);
        assert_eq!(*text.last().unwrap(), b'\n');
    }

    #[test]
    fn words_come_from_vocabulary() {
        let text = CorpusBuilder::new(2).lines(50).build();
        let s = String::from_utf8(text).unwrap();
        for word in s.split_whitespace() {
            assert!(VOCABULARY.contains(&word), "unknown word {word}");
        }
    }

    #[test]
    fn frequency_is_head_heavy() {
        let text = CorpusBuilder::new(3).lines(2000).build();
        let s = String::from_utf8(text).unwrap();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for w in s.split_whitespace() {
            *counts.entry(w).or_default() += 1;
        }
        // "the" (rank 0) should dominate a tail word.
        let head = counts.get("the").copied().unwrap_or(0);
        let tail = counts.get("voyage").copied().unwrap_or(0);
        assert!(head > tail * 3, "head {head} vs tail {tail}");
    }

    #[test]
    fn repeated_lines_exist() {
        let text = CorpusBuilder::new(4).lines(500).build();
        let s = String::from_utf8(text).unwrap();
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for line in s.lines() {
            *seen.entry(line).or_default() += 1;
        }
        assert!(
            seen.values().any(|&c| c > 1),
            "no duplicate lines generated"
        );
    }

    #[test]
    fn word_range_respected() {
        let text = CorpusBuilder::new(7)
            .lines(100)
            .words_per_line(3, 4)
            .build();
        let s = String::from_utf8(text).unwrap();
        for line in s.lines() {
            let n = line.split_whitespace().count();
            assert!((3..=4).contains(&n), "line with {n} words");
        }
    }

    #[test]
    #[should_panic(expected = "bad words-per-line")]
    fn rejects_bad_range() {
        let _ = CorpusBuilder::new(0).words_per_line(0, 5);
    }
}
