//! An in-process erasure-coded storage grid with real bytes and real
//! degraded reads.
//!
//! [`MiniGrid`] plays HDFS-RAID's role: it splits a file into fixed-size
//! blocks, groups them into `(n, k)` stripes, encodes each stripe with
//! the Reed–Solomon codec, and scatters the shards across the nodes of a
//! [`cluster::Topology`] under the rack-aware placement policy. Killing
//! a node makes its blocks unreachable; reading one then performs an
//! actual degraded read — download `k` surviving shards, invert the
//! decode matrix, reconstruct the bytes.

use std::collections::BTreeSet;

use cluster::{ClusterState, NodeId, Topology};
use ecstore::placement::RoundRobinPlacement;
use ecstore::{BlockRef, BlockStore, StripeLayout};
use erasure::stripe::{group_into_stripes, split_into_blocks};
use erasure::{CodeError, CodeParams, StripeCodec};
use simkit::SimRng;

/// Placement stream label (DESIGN.md §9, R1): the grid forks a
/// dedicated stream off the seed root for shard placement, matching
/// the engine's label so a textlab grid and a simulated cluster built
/// from the same seed place identically. Frozen — goldens replay it.
const PLACEMENT_STREAM: u64 = 1;

/// Errors from grid construction or reads.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// The file produced zero blocks.
    EmptyFile,
    /// Placement or layout failed (message from the underlying error).
    Layout(String),
    /// A stripe lost more than `n − k` shards.
    Unrecoverable {
        /// The stripe that can no longer be decoded.
        stripe: usize,
    },
    /// The erasure codec failed (should not happen for valid grids).
    Codec(CodeError),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::EmptyFile => write!(f, "file has no blocks"),
            GridError::Layout(e) => write!(f, "layout failed: {e}"),
            GridError::Unrecoverable { stripe } => {
                write!(
                    f,
                    "stripe {stripe} lost more shards than the code tolerates"
                )
            }
            GridError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<CodeError> for GridError {
    fn from(e: CodeError) -> GridError {
        GridError::Codec(e)
    }
}

/// Transfer accounting for one grid read (or a whole job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadStats {
    /// Reads served directly from the holder node.
    pub direct_reads: usize,
    /// Reads that needed reconstruction.
    pub degraded_reads: usize,
    /// Shards downloaded over the (simulated) network.
    pub blocks_transferred: usize,
    /// How many of those crossed racks.
    pub cross_rack_transfers: usize,
}

impl ReadStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: ReadStats) {
        self.direct_reads += other.direct_reads;
        self.degraded_reads += other.degraded_reads;
        self.blocks_transferred += other.blocks_transferred;
        self.cross_rack_transfers += other.cross_rack_transfers;
    }
}

/// The in-process erasure-coded grid. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct MiniGrid {
    topo: Topology,
    store: BlockStore,
    codec: StripeCodec,
    state: ClusterState,
    /// Shard bytes by global block index.
    shards: Vec<Vec<u8>>,
    file_len: usize,
    block_size: usize,
    rng: SimRng,
    stats: ReadStats,
}

impl MiniGrid {
    /// Stores `file` erasure-coded across the topology.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::EmptyFile`] for an empty file and
    /// [`GridError::Layout`] if placement fails.
    pub fn new(
        topo: Topology,
        params: CodeParams,
        block_size: usize,
        file: &[u8],
        seed: u64,
    ) -> Result<MiniGrid, GridError> {
        if file.is_empty() {
            return Err(GridError::EmptyFile);
        }
        let blocks = split_into_blocks(file, block_size);
        let stripes = group_into_stripes(&blocks, params.k());
        let num_native = stripes.len() * params.k();
        let layout =
            StripeLayout::new(params, num_native).map_err(|e| GridError::Layout(e.to_string()))?;
        let mut rng = SimRng::seed_from_u64(seed);
        let mut placement_rng = rng.fork(PLACEMENT_STREAM);
        // Round-robin placement, as on the paper's testbed (the rack
        // constraint is a simulation-side requirement that the (12,10)
        // testbed code cannot satisfy on three racks).
        let store = BlockStore::place(&topo, layout, &RoundRobinPlacement, &mut placement_rng)
            .map_err(|e| GridError::Layout(e.to_string()))?;
        let codec = StripeCodec::new(params)?;
        let mut shards = Vec::with_capacity(store.layout().num_blocks());
        for natives in &stripes {
            shards.extend(codec.encode(natives)?);
        }
        let state = ClusterState::all_alive(&topo);
        Ok(MiniGrid {
            topo,
            store,
            codec,
            state,
            shards,
            file_len: file.len(),
            block_size,
            rng,
            stats: ReadStats::default(),
        })
    }

    /// The stored file's length in bytes (padding excluded).
    pub fn file_len(&self) -> usize {
        self.file_len
    }

    /// Number of native blocks that contain real file bytes.
    pub fn num_data_blocks(&self) -> usize {
        self.file_len.div_ceil(self.block_size)
    }

    /// Total native blocks including stripe padding.
    pub fn num_native_blocks(&self) -> usize {
        self.store.layout().num_native()
    }

    /// The block→node map.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Cumulative transfer statistics.
    pub fn stats(&self) -> ReadStats {
        self.stats
    }

    /// Resets the transfer statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ReadStats::default();
    }

    /// Kills a node; its shards become unreachable.
    ///
    /// # Panics
    ///
    /// Panics on an unknown node.
    pub fn fail_node(&mut self, node: NodeId) {
        self.state.fail_node(node);
    }

    /// Live/failed view.
    pub fn cluster_state(&self) -> &ClusterState {
        &self.state
    }

    /// Reads native block `i` (dense native index), transparently
    /// performing a degraded read if its holder is down. The read is
    /// attributed to a reader chosen uniformly among live nodes (as a
    /// re-scheduled map task would be).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::Unrecoverable`] if the stripe has fewer than
    /// `k` surviving shards.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn read_native(&mut self, i: usize) -> Result<Vec<u8>, GridError> {
        let block = self.store.layout().native_at(i);
        let holder = self.store.node_of(block);
        if self.state.is_alive(holder) {
            self.stats.direct_reads += 1;
            return Ok(self.shards[self.store.layout().global_index(block)].clone());
        }
        // Degraded read: pick a live reader, download k surviving shards,
        // decode.
        let alive = self.state.alive_nodes();
        let reader = alive[self.rng.below(alive.len())];
        self.degraded_read(block, reader)
    }

    /// Performs a degraded read of `block` at `reader`, preferring the
    /// reader's own shards as a real HDFS-RAID client would.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::Unrecoverable`] if fewer than `k` shards of
    /// the stripe survive.
    pub fn degraded_read(&mut self, block: BlockRef, reader: NodeId) -> Result<Vec<u8>, GridError> {
        let k = self.store.layout().params().k();
        let survivors = self.store.survivors_of(block.stripe, &self.state);
        if survivors.len() < k {
            return Err(GridError::Unrecoverable {
                stripe: block.stripe.index(),
            });
        }
        // LocalFirst ordering: reader's own shards, then same rack, then
        // remote.
        let reader_rack = self.topo.rack_of(reader);
        let mut ordered: Vec<(usize, NodeId)> = survivors;
        ordered.sort_by_key(|&(pos, node)| {
            let class = if node == reader {
                0
            } else if self.topo.rack_of(node) == reader_rack {
                1
            } else {
                2
            };
            (class, pos)
        });
        ordered.truncate(k);

        // Borrow the source shards straight out of the store — the codec
        // accepts `(index, &[u8])` survivors, so a degraded read no
        // longer clones k shards just to hand them over.
        let mut sources: Vec<(usize, &[u8])> = Vec::with_capacity(k);
        for &(pos, node) in &ordered {
            let src = BlockRef {
                stripe: block.stripe,
                pos,
            };
            if node != reader {
                self.stats.blocks_transferred += 1;
                if self.topo.rack_of(node) != reader_rack {
                    self.stats.cross_rack_transfers += 1;
                }
            }
            sources.push((
                pos,
                self.shards[self.store.layout().global_index(src)].as_slice(),
            ));
        }
        self.stats.degraded_reads += 1;
        Ok(self.codec.reconstruct(&sources, block.pos)?)
    }

    /// Reads the entire file back (for verification), trimming stripe
    /// padding.
    ///
    /// # Errors
    ///
    /// Propagates [`GridError::Unrecoverable`] from degraded reads.
    pub fn read_file(&mut self) -> Result<Vec<u8>, GridError> {
        let mut out = Vec::with_capacity(self.file_len);
        for i in 0..self.num_data_blocks() {
            out.extend(self.read_native(i)?);
        }
        out.truncate(self.file_len);
        Ok(out)
    }

    /// The set of currently failed nodes (diagnostics).
    pub fn failed_nodes(&self) -> BTreeSet<NodeId> {
        self.state.failed_nodes().into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn grid(seed: u64) -> (Vec<u8>, MiniGrid) {
        let text = CorpusBuilder::new(seed).lines(300).build();
        let topo = Topology::homogeneous(2, 3, 2, 1);
        let grid = MiniGrid::new(topo, CodeParams::new(4, 2).unwrap(), 1024, &text, seed).unwrap();
        (text, grid)
    }

    #[test]
    fn healthy_read_round_trips() {
        let (text, mut grid) = grid(1);
        let back = grid.read_file().unwrap();
        assert_eq!(back, text);
        assert_eq!(grid.stats().degraded_reads, 0);
        assert!(grid.stats().direct_reads > 0);
    }

    #[test]
    fn degraded_read_round_trips() {
        let (text, mut grid) = grid(2);
        grid.fail_node(NodeId(0));
        let back = grid.read_file().unwrap();
        assert_eq!(back, text, "reconstruction must be bit-identical");
        assert!(grid.stats().degraded_reads > 0, "node 0 held some block");
        assert!(grid.stats().blocks_transferred >= grid.stats().degraded_reads);
    }

    #[test]
    fn double_failure_survives_with_two_parities() {
        let (text, mut grid) = grid(3);
        grid.fail_node(NodeId(1));
        grid.fail_node(NodeId(4));
        let back = grid.read_file().unwrap();
        assert_eq!(back, text);
        assert_eq!(grid.failed_nodes().len(), 2);
    }

    #[test]
    fn triple_failure_reports_unrecoverable() {
        // (4,2) tolerates 2; killing 3 of 6 nodes must break some stripe
        // (each stripe uses 4 distinct of 6 nodes, so it loses >= 1; some
        // stripe loses >= 3 by counting: 3 failed nodes hold half of all
        // shards).
        let (_, mut grid) = grid(4);
        grid.fail_node(NodeId(0));
        grid.fail_node(NodeId(2));
        grid.fail_node(NodeId(5));
        let result = grid.read_file();
        if let Err(e) = &result {
            assert!(matches!(e, GridError::Unrecoverable { .. }));
            assert!(!e.to_string().is_empty());
        }
        // Some placements may still survive; either way nothing panics
        // and stats stay consistent.
        let s = grid.stats();
        assert!(s.blocks_transferred >= s.cross_rack_transfers);
    }

    #[test]
    fn empty_file_rejected() {
        let topo = Topology::homogeneous(2, 3, 2, 1);
        let err = MiniGrid::new(topo, CodeParams::new(4, 2).unwrap(), 1024, &[], 0).unwrap_err();
        assert_eq!(err, GridError::EmptyFile);
    }

    #[test]
    fn stats_reset() {
        let (_, mut grid) = grid(5);
        let _ = grid.read_native(0).unwrap();
        assert!(grid.stats().direct_reads > 0);
        grid.reset_stats();
        assert_eq!(grid.stats(), ReadStats::default());
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, mut a) = grid(6);
        let (_, mut b) = grid(6);
        a.fail_node(NodeId(0));
        b.fail_node(NodeId(0));
        assert_eq!(a.read_file().unwrap(), b.read_file().unwrap());
        assert_eq!(a.stats(), b.stats());
    }
}
