//! The three testbed workloads as real map/reduce functions, with
//! Hadoop-style record splitting.
//!
//! All three jobs fit the "map emits `(key, count)`; reduce sums per
//! key" shape:
//!
//! * [`WordCount`] — key = word;
//! * [`Grep`] — key = line containing the needle;
//! * [`LineCount`] — key = line.
//!
//! [`run_job`] feeds each job blocks from a [`MiniGrid`] with Hadoop's
//! record-reader convention: the mapper of block `i > 0` skips the bytes
//! up to the first newline (they belong to block `i−1`'s reader, which
//! reads past its block end to finish its last record).

use std::collections::BTreeMap;

use crate::grid::{GridError, MiniGrid, ReadStats};

/// A map/reduce job over text: map one record (line) into `(key, count)`
/// pairs; reduce is summation per key.
pub trait TextJob {
    /// The job's display name.
    fn name(&self) -> &str;

    /// Emits `(key, count)` pairs for one input line (without the
    /// trailing newline).
    fn map_line(&self, line: &str, emit: &mut dyn FnMut(String, u64));
}

/// Counts the occurrences of each word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WordCount;

impl TextJob for WordCount {
    fn name(&self) -> &str {
        "WordCount"
    }

    fn map_line(&self, line: &str, emit: &mut dyn FnMut(String, u64)) {
        for word in line.split_whitespace() {
            emit(word.to_string(), 1);
        }
    }
}

/// Emits the lines containing a given word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grep {
    needle: String,
}

impl Grep {
    /// Creates a grep for `needle`.
    pub fn new(needle: &str) -> Grep {
        Grep {
            needle: needle.to_string(),
        }
    }
}

impl TextJob for Grep {
    fn name(&self) -> &str {
        "Grep"
    }

    fn map_line(&self, line: &str, emit: &mut dyn FnMut(String, u64)) {
        if line.contains(&self.needle) {
            emit(line.to_string(), 1);
        }
    }
}

/// Counts the occurrences of each distinct line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineCount;

impl TextJob for LineCount {
    fn name(&self) -> &str {
        "LineCount"
    }

    fn map_line(&self, line: &str, emit: &mut dyn FnMut(String, u64)) {
        emit(line.to_string(), 1);
    }
}

/// The reduced output of a job plus the grid traffic it caused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// Key → summed count, sorted by key.
    pub results: BTreeMap<String, u64>,
    /// Grid read statistics attributable to this job.
    pub stats: ReadStats,
}

impl JobOutput {
    /// Total emitted count across all keys.
    pub fn total(&self) -> u64 {
        self.results.values().sum()
    }
}

/// Runs a [`TextJob`] over every data block of the grid, reconstructing
/// lost blocks via degraded reads, and reduces the intermediate pairs.
///
/// Record splitting follows Hadoop's `TextInputFormat`: each mapper
/// starts after the first newline of its block (except block 0) and
/// reads past the block end into the next block to finish its final
/// record.
///
/// # Errors
///
/// Propagates [`GridError`] from block reads.
pub fn run_job(grid: &mut MiniGrid, job: &dyn TextJob) -> Result<JobOutput, GridError> {
    let before = grid.stats();
    let blocks = grid.num_data_blocks();
    let file_len = grid.file_len();
    let mut results: BTreeMap<String, u64> = BTreeMap::new();
    let mut emit = |key: String, count: u64| {
        *results.entry(key).or_default() += count;
    };

    let mut carry: Vec<u8> = Vec::new();
    for i in 0..blocks {
        let mut bytes = grid.read_native(i)?;
        // Trim zero padding on the final block.
        if i == blocks - 1 {
            let block_size = bytes.len();
            let real = file_len - i * block_size;
            bytes.truncate(real.min(block_size));
        }
        // Prepend the carry (the partial record at the end of the
        // previous block).
        let mut data = std::mem::take(&mut carry);
        data.extend_from_slice(&bytes);
        // Process all complete lines; keep the trailing partial line as
        // the next carry.
        let mut start = 0usize;
        for (pos, _) in data.iter().enumerate().filter(|&(_, &b)| b == b'\n') {
            let line = String::from_utf8_lossy(&data[start..pos]);
            job.map_line(&line, &mut emit);
            start = pos + 1;
        }
        carry = data[start..].to_vec();
    }
    if !carry.is_empty() {
        let line = String::from_utf8_lossy(&carry);
        job.map_line(&line, &mut emit);
    }

    let after = grid.stats();
    let stats = ReadStats {
        direct_reads: after.direct_reads - before.direct_reads,
        degraded_reads: after.degraded_reads - before.degraded_reads,
        blocks_transferred: after.blocks_transferred - before.blocks_transferred,
        cross_rack_transfers: after.cross_rack_transfers - before.cross_rack_transfers,
    };
    Ok(JobOutput { results, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use cluster::{NodeId, Topology};
    use erasure::CodeParams;

    fn make_grid(text: &[u8], block: usize) -> MiniGrid {
        let topo = Topology::homogeneous(2, 3, 2, 1);
        MiniGrid::new(topo, CodeParams::new(4, 2).unwrap(), block, text, 11).unwrap()
    }

    #[test]
    fn wordcount_matches_oracle() {
        let text = b"the whale the sea\nthe captain\n".to_vec();
        let mut grid = make_grid(&text, 8); // tiny blocks force splits
        let out = run_job(&mut grid, &WordCount).unwrap();
        assert_eq!(out.results.get("the"), Some(&3));
        assert_eq!(out.results.get("whale"), Some(&1));
        assert_eq!(out.results.get("sea"), Some(&1));
        assert_eq!(out.results.get("captain"), Some(&1));
        assert_eq!(out.total(), 6);
    }

    #[test]
    fn record_splitting_across_blocks_is_exact() {
        // Compare block-wise processing against whole-file processing
        // for many block sizes, including ones that split words and
        // lines arbitrarily.
        let text = CorpusBuilder::new(9).lines(120).build();
        let oracle = {
            let mut counts: BTreeMap<String, u64> = BTreeMap::new();
            for line in String::from_utf8(text.clone()).unwrap().lines() {
                for w in line.split_whitespace() {
                    *counts.entry(w.to_string()).or_default() += 1;
                }
            }
            counts
        };
        for block in [7, 64, 333, 1024, 4096] {
            let mut grid = make_grid(&text, block);
            let out = run_job(&mut grid, &WordCount).unwrap();
            assert_eq!(out.results, oracle, "block size {block}");
        }
    }

    #[test]
    fn grep_finds_matching_lines() {
        let text = b"the whale swims\nno match here\nwhale again\n".to_vec();
        let mut grid = make_grid(&text, 16);
        let out = run_job(&mut grid, &Grep::new("whale")).unwrap();
        assert_eq!(out.results.len(), 2);
        assert!(out.results.contains_key("the whale swims"));
        assert!(out.results.contains_key("whale again"));
    }

    #[test]
    fn linecount_counts_duplicates() {
        let text = b"alpha\nbeta\nalpha\n".to_vec();
        let mut grid = make_grid(&text, 4);
        let out = run_job(&mut grid, &LineCount).unwrap();
        assert_eq!(out.results.get("alpha"), Some(&2));
        assert_eq!(out.results.get("beta"), Some(&1));
    }

    #[test]
    fn failure_mode_output_is_identical() {
        let text = CorpusBuilder::new(13).lines(200).build();
        let mut healthy = make_grid(&text, 512);
        let healthy_out = run_job(&mut healthy, &WordCount).unwrap();
        assert_eq!(healthy_out.stats.degraded_reads, 0);

        let mut degraded = make_grid(&text, 512);
        degraded.fail_node(NodeId(2));
        let degraded_out = run_job(&mut degraded, &WordCount).unwrap();
        assert_eq!(degraded_out.results, healthy_out.results);
        assert!(degraded_out.stats.degraded_reads > 0);
        // Each degraded read downloads k-ish shards.
        assert!(degraded_out.stats.blocks_transferred >= degraded_out.stats.degraded_reads);
    }

    #[test]
    fn job_names() {
        assert_eq!(WordCount.name(), "WordCount");
        assert_eq!(Grep::new("x").name(), "Grep");
        assert_eq!(LineCount.name(), "LineCount");
    }
}
