//! `textlab` — the real-computation substrate that stands in for the
//! paper's Hadoop testbed data path.
//!
//! The paper's Section VI stores 15 GB of Project Gutenberg text in
//! HDFS-RAID and runs three I/O-heavy MapReduce jobs (WordCount, Grep,
//! LineCount) against it, including in failure mode where map tasks must
//! reconstruct their input via degraded reads. We cannot run Hadoop, but
//! we *can* run the identical data path end-to-end in-process:
//!
//! * [`corpus`] generates deterministic English-like text (the Gutenberg
//!   substitute);
//! * [`grid::MiniGrid`] stores the text erasure-coded across simulated
//!   nodes using the real [`erasure`] codec, kills nodes, and serves
//!   degraded reads by actually downloading `k` surviving blocks and
//!   decoding them;
//! * [`jobs`] implements the three workloads as real map/reduce functions
//!   over bytes, with Hadoop-style record splitting across block
//!   boundaries.
//!
//! # Example
//!
//! ```
//! use textlab::corpus::CorpusBuilder;
//! use textlab::grid::MiniGrid;
//! use textlab::jobs::{run_job, WordCount};
//! use cluster::Topology;
//! use erasure::CodeParams;
//!
//! let text = CorpusBuilder::new(42).lines(2000).build();
//! let topo = Topology::homogeneous(2, 3, 2, 1);
//! let mut grid = MiniGrid::new(topo, CodeParams::new(4, 2).unwrap(), 1024, &text, 7).unwrap();
//!
//! let healthy = run_job(&mut grid, &WordCount).unwrap();
//! grid.fail_node(cluster::NodeId(0));
//! let degraded = run_job(&mut grid, &WordCount).unwrap();
//! assert_eq!(healthy.results, degraded.results); // bit-identical output
//! assert!(degraded.stats.degraded_reads > 0);
//! ```

pub mod corpus;
pub mod grid;
pub mod jobs;

pub use corpus::CorpusBuilder;
pub use grid::{GridError, MiniGrid, ReadStats};
pub use jobs::{run_job, Grep, JobOutput, LineCount, TextJob, WordCount};
