//! Property-based tests for the real-bytes data path: Hadoop-style
//! record splitting must be exact for arbitrary corpora and block sizes,
//! in both healthy and failure mode.

use cluster::{NodeId, Topology};
use erasure::CodeParams;
use proptest::prelude::*;
use std::collections::BTreeMap;
use textlab::{run_job, Grep, LineCount, MiniGrid, TextJob, WordCount};

fn corpus() -> impl Strategy<Value = Vec<u8>> {
    // Arbitrary printable-ish text with whitespace and newlines,
    // including empty lines, no trailing-newline cases, and long words.
    proptest::collection::vec(
        prop_oneof![
            8 => prop_oneof![Just(b'a'), Just(b'b'), Just(b'w'), Just(b'z')],
            2 => Just(b' '),
            1 => Just(b'\n'),
        ],
        1..2000,
    )
}

fn oracle_wordcount(text: &[u8]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for line in String::from_utf8_lossy(text).lines() {
        for w in line.split_whitespace() {
            *counts.entry(w.to_string()).or_default() += 1;
        }
    }
    counts
}

fn oracle_linecount(text: &[u8]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for line in String::from_utf8_lossy(text).lines() {
        *counts.entry(line.to_string()).or_default() += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn block_splitting_never_corrupts_records(
        text in corpus(),
        block_size in 1usize..128,
        fail in proptest::option::of(0u32..6),
        seed in any::<u64>(),
    ) {
        let topo = Topology::homogeneous(2, 3, 2, 1);
        let mut grid = MiniGrid::new(
            topo,
            CodeParams::new(4, 2).unwrap(),
            block_size,
            &text,
            seed,
        )
        .unwrap();
        if let Some(f) = fail {
            grid.fail_node(NodeId(f));
        }
        let wc = run_job(&mut grid, &WordCount).unwrap();
        prop_assert_eq!(wc.results, oracle_wordcount(&text));
        let lc = run_job(&mut grid, &LineCount).unwrap();
        prop_assert_eq!(lc.results, oracle_linecount(&text));
    }

    #[test]
    fn grep_agrees_with_linewise_oracle(
        text in corpus(),
        block_size in 1usize..64,
        seed in any::<u64>(),
    ) {
        let needle = "w";
        let topo = Topology::homogeneous(2, 3, 2, 1);
        let mut grid = MiniGrid::new(
            topo,
            CodeParams::new(4, 2).unwrap(),
            block_size,
            &text,
            seed,
        )
        .unwrap();
        grid.fail_node(NodeId(1));
        let out = run_job(&mut grid, &Grep::new(needle)).unwrap();
        let oracle: u64 = String::from_utf8_lossy(&text)
            .lines()
            .filter(|l| l.contains(needle))
            .count() as u64;
        prop_assert_eq!(out.total(), oracle);
    }

    #[test]
    fn map_line_is_pure(line in "[a-z ]{0,40}") {
        // The same line always emits the same pairs, for every job.
        let jobs: Vec<Box<dyn TextJob>> = vec![
            Box::new(WordCount),
            Box::new(LineCount),
            Box::new(Grep::new("a")),
        ];
        for job in &jobs {
            let collect = || {
                let mut out = Vec::new();
                job.map_line(&line, &mut |k, v| out.push((k, v)));
                out
            };
            prop_assert_eq!(collect(), collect());
        }
    }
}
