//! Arrival traces: recorded multi-job workloads with one submit time and
//! full job shape per record.
//!
//! The paper's multi-job evidence (Figure 7(f)) synthesizes its ten jobs
//! in-process; an [`ArrivalTrace`] makes the same arrival process a
//! first-class artifact. A trace can be generated (seeded Poisson via
//! [`ArrivalTrace::poisson`]), written to disk as JSONL
//! ([`ArrivalTrace::to_jsonl`]), hand-edited or produced by external
//! tooling, and replayed into the engine
//! ([`crate::multi_job_workload`] / `Experiment::arrivals` in `dfs`).
//!
//! # On-disk format
//!
//! One JSON object per line, one line per job, in submission order:
//!
//! ```text
//! {"submit_us":0,"name":"job0","map_mean_us":20000000,"map_std_us":1000000,
//!  "reduce_mean_us":30000000,"reduce_std_us":2000000,"reduces":24,"shuffle":0.0123}
//! ```
//!
//! Times are integer microseconds (exact in the parser's `f64` number
//! type far beyond any simulated horizon) and `shuffle` prints via
//! `Display` (shortest round-trip form), so a trace round-trips
//! **bit-for-bit**: replaying a written trace reproduces the generating
//! run's metrics exactly under the same seed.
//!
//! ```
//! use workloads::ArrivalTrace;
//!
//! let trace = ArrivalTrace::poisson(7, 5, 120.0).unwrap();
//! let back = ArrivalTrace::parse_jsonl(&trace.to_jsonl()).unwrap();
//! assert_eq!(trace, back);
//! ```

use std::fmt;

use mapreduce::job::JobSpec;
use obs::json::Json;
use simkit::time::{SimDuration, SimTime};
use simkit::SimRng;

/// Stream-split label for the Poisson generator: traces drawn from seed
/// `s` are independent of every other consumer of `SimRng(s)`.
const ARRIVAL_STREAM: u64 = 0xa441_u64;

/// Why a workload could not be generated or an arrival trace could not
/// be read.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A generator was asked for zero jobs.
    NoJobs,
    /// The exponential inter-arrival mean was zero, negative, NaN or
    /// infinite.
    BadInterarrival(f64),
    /// A JSONL line failed to parse (1-based line number).
    Parse {
        /// 1-based line number in the trace file.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// A parsed record describes a job the engine cannot simulate.
    Job {
        /// 0-based record index in submission order.
        index: usize,
        /// The field-level problem, as [`JobSpec::validate`] words it.
        message: String,
    },
    /// A record submits earlier than its predecessor; traces are defined
    /// to be in submission (FIFO) order.
    UnsortedArrivals {
        /// 0-based index of the out-of-order record.
        index: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoJobs => write!(f, "no jobs requested"),
            WorkloadError::BadInterarrival(mean) => {
                write!(
                    f,
                    "inter-arrival mean must be positive and finite, got {mean}"
                )
            }
            WorkloadError::Parse { line, message } => {
                write!(f, "arrival trace line {line}: {message}")
            }
            WorkloadError::Job { index, message } => {
                write!(f, "arrival record {index}: {message}")
            }
            WorkloadError::UnsortedArrivals { index } => {
                write!(
                    f,
                    "arrival record {index} submits earlier than its predecessor"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A recorded arrival process: jobs in submission order, each with its
/// submit time and full shape. See the [module docs](self) for the JSONL
/// on-disk format.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    records: Vec<JobSpec>,
}

impl ArrivalTrace {
    /// Wraps an explicit job list, validating every spec and that submit
    /// times are non-decreasing.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::NoJobs`], [`WorkloadError::Job`] or
    /// [`WorkloadError::UnsortedArrivals`].
    pub fn from_jobs(jobs: Vec<JobSpec>) -> Result<ArrivalTrace, WorkloadError> {
        if jobs.is_empty() {
            return Err(WorkloadError::NoJobs);
        }
        for (index, spec) in jobs.iter().enumerate() {
            spec.validate()
                .map_err(|message| WorkloadError::Job { index, message })?;
            if index > 0 && spec.submit_at < jobs[index - 1].submit_at {
                return Err(WorkloadError::UnsortedArrivals { index });
            }
        }
        Ok(ArrivalTrace { records: jobs })
    }

    /// Generates `count` jobs with exponential inter-arrival times of the
    /// given mean in seconds — the Figure 7(f) Poisson process. The
    /// generator runs on a forked `SimRng` stream, so a trace drawn from
    /// seed `s` is independent of any other randomness derived from `s`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::NoJobs`] or [`WorkloadError::BadInterarrival`].
    pub fn poisson(
        seed: u64,
        count: usize,
        mean_interarrival_secs: f64,
    ) -> Result<ArrivalTrace, WorkloadError> {
        let mut rng = SimRng::seed_from_u64(seed).fork(ARRIVAL_STREAM);
        let jobs = crate::multi_job_workload(&mut rng, count, mean_interarrival_secs)?;
        Ok(ArrivalTrace { records: jobs })
    }

    /// The jobs, in submission order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.records
    }

    /// Consumes the trace into its job list, ready for
    /// `Experiment::jobs`.
    pub fn into_jobs(self) -> Vec<JobSpec> {
        self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace holds no records (unreachable through the
    /// public constructors, which reject empty traces).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the trace as JSONL (one object per line, trailing
    /// newline). The rendering is a deterministic byte-for-byte function
    /// of the records and the exact inverse of
    /// [`ArrivalTrace::parse_jsonl`].
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for spec in &self.records {
            let _ = write!(
                out,
                "{{\"submit_us\":{},\"name\":\"{}\",\"map_mean_us\":{},\"map_std_us\":{},\
                 \"reduce_mean_us\":{},\"reduce_std_us\":{},\"reduces\":{},\"shuffle\":{}}}",
                spec.submit_at.as_micros(),
                escape(&spec.name),
                spec.map_time_mean.as_micros(),
                spec.map_time_std.as_micros(),
                spec.reduce_time_mean.as_micros(),
                spec.reduce_time_std.as_micros(),
                spec.num_reduce_tasks,
                spec.shuffle_ratio,
            );
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL trace, validating each record and the submission
    /// order. Blank lines are skipped.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Parse`] with a 1-based line number for malformed
    /// JSON or missing/ill-typed fields, plus the
    /// [`ArrivalTrace::from_jobs`] conditions.
    pub fn parse_jsonl(text: &str) -> Result<ArrivalTrace, WorkloadError> {
        let mut jobs = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let spec = parse_record(line).map_err(|message| WorkloadError::Parse {
                line: i + 1,
                message,
            })?;
            jobs.push(spec);
        }
        ArrivalTrace::from_jobs(jobs)
    }
}

/// Parses one JSONL record into a [`JobSpec`] (field validation happens
/// later, in [`ArrivalTrace::from_jobs`]).
fn parse_record(line: &str) -> Result<JobSpec, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let int = |key: &str| -> Result<u64, String> {
        let x = v
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field \"{key}\""))?;
        if !(0.0..=u64::MAX as f64).contains(&x) || x.fract() != 0.0 {
            return Err(format!("field \"{key}\" is not an unsigned integer"));
        }
        Ok(x as u64)
    };
    Ok(JobSpec {
        submit_at: SimTime::from_micros(int("submit_us")?),
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"name\"".to_string())?
            .to_string(),
        map_time_mean: SimDuration::from_micros(int("map_mean_us")?),
        map_time_std: SimDuration::from_micros(int("map_std_us")?),
        reduce_time_mean: SimDuration::from_micros(int("reduce_mean_us")?),
        reduce_time_std: SimDuration::from_micros(int("reduce_std_us")?),
        num_reduce_tasks: usize::try_from(int("reduces")?)
            .map_err(|_| "field \"reduces\" exceeds usize".to_string())?,
        shuffle_ratio: v
            .get("shuffle")
            .and_then(Json::as_f64)
            .ok_or_else(|| "missing numeric field \"shuffle\"".to_string())?,
    })
}

/// JSON string escaping for job names (quotes, backslashes, control
/// characters); everything the workspace parser can read back.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_matches_in_process_generator() {
        let trace = ArrivalTrace::poisson(9, 8, 120.0).unwrap();
        let mut rng = SimRng::seed_from_u64(9).fork(ARRIVAL_STREAM);
        let direct = crate::multi_job_workload(&mut rng, 8, 120.0).unwrap();
        assert_eq!(trace.jobs(), &direct[..]);
        assert_eq!(trace.len(), 8);
        assert!(!trace.is_empty());
    }

    #[test]
    fn jsonl_round_trips_bit_for_bit() {
        let trace = ArrivalTrace::poisson(1, 10, 120.0).unwrap();
        let text = trace.to_jsonl();
        let back = ArrivalTrace::parse_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        // Including a second serialization: same bytes.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn names_with_special_characters_round_trip() {
        let mut spec = JobSpec::builder("we\"ird\\job\n").build();
        spec.submit_at = SimTime::from_secs(5);
        let trace = ArrivalTrace::from_jobs(vec![JobSpec::builder("first").build(), spec]).unwrap();
        let back = ArrivalTrace::parse_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn rejects_empty_and_bad_mean() {
        assert_eq!(
            ArrivalTrace::poisson(1, 0, 120.0).unwrap_err(),
            WorkloadError::NoJobs
        );
        assert_eq!(
            ArrivalTrace::poisson(1, 3, 0.0).unwrap_err(),
            WorkloadError::BadInterarrival(0.0)
        );
        assert_eq!(
            ArrivalTrace::parse_jsonl("").unwrap_err(),
            WorkloadError::NoJobs
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let good = ArrivalTrace::poisson(1, 1, 120.0).unwrap().to_jsonl();
        let err = ArrivalTrace::parse_jsonl(&format!("{good}not json\n")).unwrap_err();
        assert!(
            matches!(err, WorkloadError::Parse { line: 2, .. }),
            "{err:?}"
        );
        let err = ArrivalTrace::parse_jsonl("{\"submit_us\":0}\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "arrival trace line 1: missing string field \"name\""
        );
        let err = ArrivalTrace::parse_jsonl("{\"submit_us\":0.5,\"name\":\"x\"}\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "arrival trace line 1: field \"submit_us\" is not an unsigned integer"
        );
    }

    #[test]
    fn invalid_specs_and_order_are_rejected() {
        let mut bad = JobSpec::builder("bad").build();
        bad.shuffle_ratio = 7.0;
        let err = ArrivalTrace::from_jobs(vec![bad]).unwrap_err();
        assert_eq!(
            err.to_string(),
            "arrival record 0: shuffle_ratio must be a finite fraction in [0, 1], got 7"
        );

        let late = JobSpec::builder("late")
            .submit_at(SimTime::from_secs(100))
            .build();
        let early = JobSpec::builder("early").build();
        let err = ArrivalTrace::from_jobs(vec![late, early]).unwrap_err();
        assert_eq!(err, WorkloadError::UnsortedArrivals { index: 1 });
        assert_eq!(
            err.to_string(),
            "arrival record 1 submits earlier than its predecessor"
        );
    }

    #[test]
    fn hand_edited_overflow_shuffle_is_caught() {
        // 1e999 overflows to +inf in the parser's f64; JobSpec::validate
        // must reject it rather than letting it reach the engine.
        let line = "{\"submit_us\":0,\"name\":\"j\",\"map_mean_us\":20000000,\
                    \"map_std_us\":0,\"reduce_mean_us\":30000000,\"reduce_std_us\":0,\
                    \"reduces\":2,\"shuffle\":1e999}\n";
        let err = ArrivalTrace::parse_jsonl(line).unwrap_err();
        assert!(
            matches!(err, WorkloadError::Job { index: 0, .. }),
            "{err:?}"
        );
    }
}
