//! `workloads` — job generators for the paper's experiments.
//!
//! * [`simulation_default_job`] — the Section V-B simulated job: map
//!   times N(20 s, 1 s), reduce times N(30 s, 2 s), 30 reducers,
//!   1% shuffle.
//! * [`TestbedWorkload`] — the three I/O-heavy testbed jobs of
//!   Section VI (WordCount, Grep, LineCount) with task-time
//!   distributions calibrated from Table I's LF column (we do not have
//!   the authors' hardware; see DESIGN.md for the substitution note).
//! * [`multi_job_workload`] — the multi-job arrival process of
//!   Figure 7(f): `n` jobs with exponential inter-arrival times
//!   (mean 120 s) and randomized reducer counts / shuffle volumes.
//! * [`ArrivalTrace`] — the same arrival process as a recorded,
//!   replayable artifact with a JSONL on-disk format (see [`arrivals`]).
//!
//! # Example
//!
//! ```
//! use simkit::SimRng;
//! use workloads::{multi_job_workload, simulation_default_job};
//!
//! let job = simulation_default_job();
//! assert_eq!(job.num_reduce_tasks, 30);
//!
//! let mut rng = SimRng::seed_from_u64(1);
//! let jobs = multi_job_workload(&mut rng, 10, 120.0).unwrap();
//! assert_eq!(jobs.len(), 10);
//! assert!(jobs.windows(2).all(|w| w[0].submit_at <= w[1].submit_at));
//! ```

pub mod arrivals;

pub use arrivals::{ArrivalTrace, WorkloadError};

use mapreduce::job::JobSpec;
use simkit::time::{SimDuration, SimTime};
use simkit::SimRng;

/// The Section V-B simulated job (map N(20 s, 1 s), reduce N(30 s, 2 s),
/// 30 reducers, 1% shuffle).
pub fn simulation_default_job() -> JobSpec {
    JobSpec::builder("sim-default").build()
}

/// A map-only variant of the simulated job, used by the analysis
/// cross-check and the extreme-case experiment of Figure 8(d).
pub fn map_only_job(map_secs: f64) -> JobSpec {
    JobSpec::builder("map-only")
        .map_time(SimDuration::from_secs_f64(map_secs), SimDuration::ZERO)
        .map_only()
        .build()
}

/// The three I/O-heavy MapReduce jobs run on the paper's 13-node Hadoop
/// testbed (Section VI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TestbedWorkload {
    /// Counts word occurrences; moderate shuffle volume.
    WordCount,
    /// Emits lines matching a word; the lightest maps and shuffle.
    Grep,
    /// Counts line occurrences; "shuffles more lines than Grep".
    LineCount,
}

impl TestbedWorkload {
    /// All three workloads, in the paper's order.
    pub const ALL: [TestbedWorkload; 3] = [
        TestbedWorkload::WordCount,
        TestbedWorkload::Grep,
        TestbedWorkload::LineCount,
    ];

    /// The workload name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            TestbedWorkload::WordCount => "WordCount",
            TestbedWorkload::Grep => "Grep",
            TestbedWorkload::LineCount => "LineCount",
        }
    }

    /// The job spec calibrated from Table I: map means near the paper's
    /// normal-map runtimes (30.9 s / 11.7 s / 35.9 s), eight reducers,
    /// and shuffle volumes ordered Grep < WordCount < LineCount.
    pub fn job(self) -> JobSpec {
        let (map_mean, map_std, reduce_mean, reduce_std, shuffle) = match self {
            TestbedWorkload::WordCount => (30.0, 2.0, 60.0, 4.0, 0.10),
            TestbedWorkload::Grep => (11.0, 1.0, 40.0, 3.0, 0.02),
            TestbedWorkload::LineCount => (35.0, 2.0, 65.0, 4.0, 0.15),
        };
        JobSpec::builder(self.name())
            .map_time(
                SimDuration::from_secs_f64(map_mean),
                SimDuration::from_secs_f64(map_std),
            )
            .reduce_time(
                SimDuration::from_secs_f64(reduce_mean),
                SimDuration::from_secs_f64(reduce_std),
            )
            .reduce_tasks(8)
            .shuffle_ratio(shuffle)
            .build()
    }
}

/// Generates `count` jobs with exponential inter-arrival times of the
/// given mean (seconds), as in Figure 7(f). Jobs vary in reducer count
/// (20–40) and shuffle ratio (1%–10%), cycling the base task-time
/// distributions of [`simulation_default_job`].
///
/// # Errors
///
/// Returns [`WorkloadError::NoJobs`] if `count` is zero and
/// [`WorkloadError::BadInterarrival`] if the mean is not positive and
/// finite — both reachable from user input via `simulate --poisson`.
pub fn multi_job_workload(
    rng: &mut SimRng,
    count: usize,
    mean_interarrival_secs: f64,
) -> Result<Vec<JobSpec>, WorkloadError> {
    if count == 0 {
        return Err(WorkloadError::NoJobs);
    }
    if !(mean_interarrival_secs > 0.0 && mean_interarrival_secs.is_finite()) {
        return Err(WorkloadError::BadInterarrival(mean_interarrival_secs));
    }
    let mut jobs = Vec::with_capacity(count);
    let mut at = SimTime::ZERO;
    for i in 0..count {
        if i > 0 {
            at += rng.exponential_duration(SimDuration::from_secs_f64(mean_interarrival_secs));
        }
        let reduce_tasks = 20 + rng.below(21); // 20..=40
        let shuffle = 0.01 + rng.uniform_f64() * 0.09; // 1%..10%
        jobs.push(
            JobSpec::builder(&format!("job{i}"))
                .reduce_tasks(reduce_tasks)
                .shuffle_ratio(shuffle)
                .submit_at(at)
                .build(),
        );
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_default_matches_section5() {
        let j = simulation_default_job();
        assert_eq!(j.map_time_mean, SimDuration::from_secs(20));
        assert_eq!(j.reduce_time_mean, SimDuration::from_secs(30));
        assert_eq!(j.num_reduce_tasks, 30);
        assert!((j.shuffle_ratio - 0.01).abs() < 1e-12);
    }

    #[test]
    fn map_only_has_no_reducers() {
        let j = map_only_job(3.0);
        assert!(j.is_map_only());
        assert_eq!(j.map_time_mean, SimDuration::from_secs(3));
        assert_eq!(j.map_time_std, SimDuration::ZERO);
    }

    #[test]
    fn testbed_jobs_are_ordered_like_table1() {
        let wc = TestbedWorkload::WordCount.job();
        let grep = TestbedWorkload::Grep.job();
        let lc = TestbedWorkload::LineCount.job();
        // Map times: Grep < WordCount < LineCount (Table I: 11.7/30.9/35.9).
        assert!(grep.map_time_mean < wc.map_time_mean);
        assert!(wc.map_time_mean < lc.map_time_mean);
        // Shuffle volumes: Grep < WordCount < LineCount (Section VI).
        assert!(grep.shuffle_ratio < wc.shuffle_ratio);
        assert!(wc.shuffle_ratio < lc.shuffle_ratio);
        // Eight reducers each.
        for j in [&wc, &grep, &lc] {
            assert_eq!(j.num_reduce_tasks, 8);
        }
        assert_eq!(TestbedWorkload::ALL.len(), 3);
        assert_eq!(TestbedWorkload::Grep.name(), "Grep");
    }

    #[test]
    fn multi_job_interarrivals_are_exponential_ish() {
        let mut rng = SimRng::seed_from_u64(42);
        let jobs = multi_job_workload(&mut rng, 500, 120.0).unwrap();
        assert_eq!(jobs[0].submit_at, SimTime::ZERO);
        let gaps: Vec<f64> = jobs
            .windows(2)
            .map(|w| w[1].submit_at.as_secs_f64() - w[0].submit_at.as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 120.0).abs() < 15.0, "mean gap {mean}");
        assert!(gaps.iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn multi_job_varies_parameters() {
        let mut rng = SimRng::seed_from_u64(7);
        let jobs = multi_job_workload(&mut rng, 10, 120.0).unwrap();
        let reducers: std::collections::HashSet<usize> =
            jobs.iter().map(|j| j.num_reduce_tasks).collect();
        assert!(reducers.len() > 1, "reducer counts should vary");
        assert!(jobs.iter().all(|j| (20..=40).contains(&j.num_reduce_tasks)));
        assert!(jobs
            .iter()
            .all(|j| (0.01..=0.10).contains(&j.shuffle_ratio)));
    }

    #[test]
    fn multi_job_deterministic_per_seed() {
        let a = multi_job_workload(&mut SimRng::seed_from_u64(1), 10, 120.0).unwrap();
        let b = multi_job_workload(&mut SimRng::seed_from_u64(1), 10, 120.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_zero_jobs() {
        let err = multi_job_workload(&mut SimRng::seed_from_u64(0), 0, 120.0).unwrap_err();
        assert_eq!(err, WorkloadError::NoJobs);
        assert_eq!(err.to_string(), "no jobs requested");
    }

    #[test]
    fn rejects_bad_interarrival_mean() {
        for mean in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let err = multi_job_workload(&mut SimRng::seed_from_u64(0), 3, mean).unwrap_err();
            assert!(matches!(err, WorkloadError::BadInterarrival(_)), "{mean}");
        }
        let err = multi_job_workload(&mut SimRng::seed_from_u64(0), 3, -1.0).unwrap_err();
        assert_eq!(
            err.to_string(),
            "inter-arrival mean must be positive and finite, got -1"
        );
    }
}
