//! Multiple MapReduce jobs on a FIFO queue with Poisson arrivals, as in
//! the paper's Figure 7(f): per-job normalized runtimes under LF vs EDF
//! while one node is failed.
//!
//! ```sh
//! cargo run --release -p dfs --example multi_job_cluster
//! ```

use dfs::experiment::Policy;
use dfs::presets;
use dfs::simkit::report::{f3, pct, reduction, Table};
use dfs::simkit::SimRng;
use dfs::workloads::multi_job_workload;

fn main() {
    // Scale the default cluster down to keep the example fast: 5 jobs,
    // fewer blocks. `cargo run -p bench --bin fig7_multijob` runs the
    // paper-size version (10 jobs, 1440 blocks).
    let mut exp = presets::simulation_default();
    exp.num_blocks = 720;
    let mut rng = SimRng::seed_from_u64(99);
    exp.jobs = multi_job_workload(&mut rng, 5, 120.0).expect("valid workload parameters");

    let seed = 3;
    println!("failure: {}", exp.failure_for_seed(seed));
    let lf = exp
        .normalized_runtimes(Policy::LocalityFirst, seed)
        .expect("LF run");
    let edf = exp
        .normalized_runtimes(Policy::EnhancedDegradedFirst, seed)
        .expect("EDF run");

    let mut table = Table::new(&["job", "arrives (s)", "LF norm.", "EDF norm.", "reduction"]);
    for (i, job) in exp.jobs.iter().enumerate() {
        table.row(&[
            job.name.clone(),
            format!("{:.0}", job.submit_at.as_secs_f64()),
            f3(lf[i]),
            f3(edf[i]),
            pct(reduction(lf[i], edf[i])),
        ]);
    }
    table.print("per-job normalized runtime, multi-job FIFO (cf. paper Fig. 7(f))");
}
