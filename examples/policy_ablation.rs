//! Ablation of the enhanced degraded-first heuristics (Section IV-C):
//! run BDF, BDF+locality-preservation, BDF+rack-awareness and full EDF
//! on the extreme-case cluster of Figure 8(d), where five "bad" nodes
//! process maps 10× slower.
//!
//! ```sh
//! cargo run --release -p dfs --example policy_ablation
//! ```

use dfs::experiment::Policy;
use dfs::mapreduce::MapLocality;
use dfs::presets;
use dfs::simkit::report::{f3, pct, Table};
use dfs::sweep::sweep_seeds;

fn main() {
    let exp = presets::extreme_case();
    let seeds = 8;
    println!("extreme case: 5 bad nodes (10x slower maps), 150 blocks, map-only job");

    let policies = [
        ("LF", Policy::LocalityFirst),
        ("BDF", Policy::BasicDegradedFirst),
        (
            "BDF+locality",
            Policy::DegradedFirstWith {
                locality_preservation: true,
                rack_awareness: false,
            },
        ),
        (
            "BDF+rack",
            Policy::DegradedFirstWith {
                locality_preservation: false,
                rack_awareness: true,
            },
        ),
        ("EDF", Policy::EnhancedDegradedFirst),
    ];

    let mut table = Table::new(&["policy", "mean norm. runtime", "vs LF", "non-local maps"]);
    let mut lf_mean = None;
    for (name, policy) in policies {
        let sweep = sweep_seeds(seeds, |seed| exp.normalized_runtime(policy, seed).ok());
        let mean = sweep.mean();
        let vs = match lf_mean {
            None => {
                lf_mean = Some(mean);
                "-".to_string()
            }
            Some(lf) => pct((lf - mean) / lf),
        };
        // Count stolen locality on one representative seed.
        let result = exp.run(policy, 0).expect("run");
        let non_local =
            result.map_count(MapLocality::Remote) + result.map_count(MapLocality::RackLocal);
        table.row(&[name.to_string(), f3(mean), vs, non_local.to_string()]);
    }
    table.print("heuristic ablation in the extreme case (cf. paper Fig. 8(d))");
}
