//! Quickstart: run one failure-mode MapReduce job under locality-first
//! and degraded-first scheduling and compare runtimes.
//!
//! ```sh
//! cargo run --release -p dfs --example quickstart
//! ```

use dfs::experiment::Policy;
use dfs::presets;
use dfs::simkit::report::{pct, reduction, Table};

fn main() {
    // A 16-node, 4-rack cluster storing 240 blocks under an (8,6) code,
    // with one randomly failed node and constrained (100 Mbps) rack
    // links. See `dfs::presets` for the full paper-size configurations.
    let exp = presets::small_default();
    let seed = 1;

    let scenario = exp.failure_for_seed(seed);
    println!(
        "cluster : {} nodes / {} racks",
        exp.topo.num_nodes(),
        exp.topo.num_racks()
    );
    println!(
        "code    : {} over {} native blocks",
        exp.code, exp.num_blocks
    );
    println!("failure : {scenario}");

    let mut table = Table::new(&["policy", "runtime (s)", "normalized", "degraded read (s)"]);
    let normal = exp.run_normal_mode(seed).expect("normal mode run");
    let normal_rt = normal.jobs[0].runtime().as_secs_f64();

    let mut lf_runtime = None;
    for policy in [
        Policy::LocalityFirst,
        Policy::BasicDegradedFirst,
        Policy::EnhancedDegradedFirst,
    ] {
        let result = exp.run(policy, seed).expect("failure mode run");
        let rt = result.jobs[0].runtime().as_secs_f64();
        let reads = result.degraded_read_secs();
        let mean_read = reads.iter().sum::<f64>() / reads.len().max(1) as f64;
        table.row(&[
            policy.name().to_string(),
            format!("{rt:.1}"),
            format!("{:.3}", rt / normal_rt),
            format!("{mean_read:.1}"),
        ]);
        if policy == Policy::LocalityFirst {
            lf_runtime = Some(rt);
        } else if let Some(lf) = lf_runtime {
            println!(
                "{} cuts LF runtime by {}",
                policy.name(),
                pct(reduction(lf, rt))
            );
        }
    }
    println!("normal-mode runtime: {normal_rt:.1}s");
    table.print("single job, single node failure");
}
