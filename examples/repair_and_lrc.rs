//! Beyond degraded reads: repairing the failed node, and what changes
//! with a local reconstruction code.
//!
//! This example (an extension of the paper's scope):
//! 1. plans and simulates the full repair of a failed node — k blocks
//!    downloaded per lost block, bounded reconstruction parallelism;
//! 2. encodes real bytes with an Azure-style LRC(12,2,2) and repairs a
//!    lost block from its 6-block local group instead of 12 shards;
//! 3. re-runs the LF vs EDF comparison with LRC-cheap degraded reads.
//!
//! ```sh
//! cargo run --release -p dfs --example repair_and_lrc
//! ```

use dfs::cluster::ClusterState;
use dfs::erasure::lrc::LrcParams;
use dfs::experiment::Policy;
use dfs::presets;
use dfs::repair::{simulate, RepairPlan};
use dfs::simkit::report::Table;
use dfs::simkit::SimRng;

fn main() {
    // --- 1. full-node repair on the paper's default cluster ------------
    let exp = presets::simulation_default();
    let seed = 1;
    let scenario = exp.failure_for_seed(seed);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut placement_rng = rng.fork(1);
    let layout = dfs::ecstore::StripeLayout::new(exp.code, exp.num_blocks).expect("layout");
    let store = dfs::ecstore::BlockStore::place(
        &exp.topo,
        layout,
        &dfs::ecstore::RackAwarePlacement,
        &mut placement_rng,
    )
    .expect("placement");
    let state = ClusterState::from_scenario(&exp.topo, &scenario);
    let plan = RepairPlan::plan(&store, &exp.topo, &state, &mut rng).expect("plan");
    let mut table = Table::new(&["parallelism", "repair makespan (s)"]);
    for p in [1usize, 4, 16] {
        let report = simulate(&plan, &exp.topo, exp.config.net, exp.config.block_bytes, p);
        table.row(&[
            p.to_string(),
            format!("{:.1}", report.makespan.as_secs_f64()),
        ]);
    }
    println!(
        "repairing {} after {}: {} lost blocks, {:.1} GB to move",
        exp.topo.num_nodes(),
        scenario,
        plan.tasks.len(),
        plan.network_block_count() as f64 * exp.config.block_bytes as f64 / 1e9
    );
    table.print("full-node repair vs reconstruction parallelism");

    // --- 2. real bytes through an LRC ----------------------------------
    let lrc = LrcParams::new(12, 2, 2)
        .expect("valid LRC")
        .codec()
        .expect("codec");
    let data: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i.wrapping_mul(17); 4096]).collect();
    let stripe = lrc.encode(&data).expect("encode");
    let lost = 7usize;
    let group = lrc.local_repair_group(lost);
    let survivors: Vec<(usize, Vec<u8>)> = group.iter().map(|&i| (i, stripe[i].clone())).collect();
    let rebuilt = lrc
        .reconstruct_local(&survivors, lost)
        .expect("local repair");
    assert_eq!(rebuilt, data[lost]);
    println!(
        "\nLRC(12,2,2): rebuilt block {lost} from its local group {group:?} — \
         {} reads instead of 12",
        group.len()
    );

    // --- 3. LF vs EDF when degraded reads are LRC-cheap ----------------
    let mut cheap = presets::simulation_default();
    cheap.config.degraded_fetch_blocks = Some(6);
    let mut compare = Table::new(&["degraded read", "LF norm.", "EDF norm."]);
    for (label, e) in [("RS: 15 fetches", &exp), ("LRC-like: 6 fetches", &cheap)] {
        let lf = e
            .normalized_runtime(Policy::LocalityFirst, seed)
            .expect("LF");
        let edf = e
            .normalized_runtime(Policy::EnhancedDegradedFirst, seed)
            .expect("EDF");
        compare.row(&[label.to_string(), format!("{lf:.3}"), format!("{edf:.3}")]);
    }
    compare.print("cheaper degraded reads narrow (but keep) the EDF win");
}
