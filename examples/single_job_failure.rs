//! The paper's single-job simulation (Section V-B) at full scale:
//! 40 nodes / 4 racks, (20,15) over 1440 blocks of 128 MB, map+reduce
//! job, one random node failure — compared across LF, BDF and EDF over
//! several seeds.
//!
//! ```sh
//! cargo run --release -p dfs --example single_job_failure
//! ```

use dfs::experiment::Policy;
use dfs::mapreduce::MapLocality;
use dfs::presets;
use dfs::simkit::report::{f3, pct, Table};
use dfs::sweep::sweep_seeds;

fn main() {
    let exp = presets::simulation_default();
    let seeds = 5; // the paper uses 30; keep the example snappy

    println!(
        "simulating {} seeds of the Section V-B default cluster ...",
        seeds
    );

    let mut table = Table::new(&["policy", "median norm. runtime", "mean", "vs LF"]);
    let mut lf_mean = None;
    for policy in [
        Policy::LocalityFirst,
        Policy::BasicDegradedFirst,
        Policy::EnhancedDegradedFirst,
    ] {
        let sweep = sweep_seeds(seeds, |seed| exp.normalized_runtime(policy, seed).ok());
        let mean = sweep.mean();
        let vs = match lf_mean {
            None => {
                lf_mean = Some(mean);
                "-".to_string()
            }
            Some(lf) => pct((lf - mean) / lf),
        };
        table.row(&[policy.name().to_string(), f3(sweep.median()), f3(mean), vs]);
    }
    table.print("normalized runtime, single node failure (paper Fig. 7 setting)");

    // Task-level view for one seed.
    let result = exp.run(Policy::EnhancedDegradedFirst, 0).expect("run");
    let mut detail = Table::new(&["metric", "value"]);
    detail.row(&["map tasks".into(), result.tasks.len().to_string()]);
    for loc in [
        MapLocality::NodeLocal,
        MapLocality::RackLocal,
        MapLocality::Remote,
        MapLocality::Degraded,
    ] {
        detail.row(&[format!("{loc} maps"), result.map_count(loc).to_string()]);
    }
    let reads = result.degraded_read_secs();
    detail.row(&[
        "mean degraded read (s)".into(),
        format!(
            "{:.1}",
            reads.iter().sum::<f64>() / reads.len().max(1) as f64
        ),
    ]);
    detail.print("EDF task breakdown (seed 0)");
}
