//! End-to-end degraded read on real bytes: store a synthetic text
//! corpus erasure-coded across a mini-cluster, kill a node, and run
//! WordCount / Grep / LineCount — the map tasks whose blocks were lost
//! reconstruct them through the actual Reed–Solomon decoder.
//!
//! This is the reproduction's stand-in for the paper's Hadoop testbed
//! data path (Section VI).
//!
//! ```sh
//! cargo run --release -p dfs --example wordcount_degraded_read
//! ```

use dfs::cluster::{NodeId, Topology};
use dfs::erasure::CodeParams;
use dfs::simkit::report::Table;
use dfs::textlab::{run_job, CorpusBuilder, Grep, LineCount, MiniGrid, TextJob, WordCount};

fn main() {
    // ~1 MB of Gutenberg-like text over 12 nodes / 3 racks, (12,10)
    // coding with 16 KiB blocks — the testbed's shape in miniature.
    let text = CorpusBuilder::new(2024).lines(20_000).build();
    println!("corpus: {} bytes, {} lines", text.len(), 20_000);

    let topo = Topology::homogeneous(3, 4, 4, 1);
    let params = CodeParams::new(12, 10).expect("valid (12,10)");
    let make_grid = || MiniGrid::new(topo.clone(), params, 16 * 1024, &text, 7).expect("grid");

    let jobs: Vec<Box<dyn TextJob>> = vec![
        Box::new(WordCount),
        Box::new(Grep::new("whale")),
        Box::new(LineCount),
    ];

    let mut table = Table::new(&[
        "job",
        "keys",
        "total",
        "degraded reads",
        "blocks fetched",
        "cross-rack",
        "output identical",
    ]);
    for job in &jobs {
        // Healthy run.
        let mut healthy = make_grid();
        let healthy_out = run_job(&mut healthy, job.as_ref()).expect("healthy run");
        // Failure-mode run: kill a node, map tasks reconstruct via
        // degraded reads.
        let mut degraded = make_grid();
        degraded.fail_node(NodeId(0));
        let degraded_out = run_job(&mut degraded, job.as_ref()).expect("degraded run");
        table.row(&[
            job.name().to_string(),
            degraded_out.results.len().to_string(),
            degraded_out.total().to_string(),
            degraded_out.stats.degraded_reads.to_string(),
            degraded_out.stats.blocks_transferred.to_string(),
            degraded_out.stats.cross_rack_transfers.to_string(),
            (healthy_out.results == degraded_out.results).to_string(),
        ]);
    }
    table.print("real map/reduce over an erasure-coded store, node0 failed");

    // Show WordCount's head.
    let mut grid = make_grid();
    grid.fail_node(NodeId(0));
    let out = run_job(&mut grid, &WordCount).expect("wordcount");
    let mut top: Vec<(&String, &u64)> = out.results.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let mut head = Table::new(&["word", "count"]);
    for (word, count) in top.into_iter().take(10) {
        head.row(&[word.clone(), count.to_string()]);
    }
    head.print("top-10 words (reconstructed data)");
}
