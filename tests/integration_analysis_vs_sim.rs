//! Cross-validation of the Section IV-B closed-form model against the
//! discrete event simulator, under the model's own assumptions
//! (map-only job, deterministic map time, single node failure, uniform
//! random degraded-read sources).

use dfs::analysis::ModelParams;
use dfs::cluster::Topology;
use dfs::erasure::CodeParams;
use dfs::experiment::{Experiment, FailureSpec, PlacementKind, Policy};
use dfs::mapreduce::engine::EngineConfig;
use dfs::mapreduce::job::JobSpec;
use dfs::netsim::NetConfig;
use dfs::simkit::time::SimDuration;
use dfs::sweep::sweep_seeds;

/// A small analysis-compatible setting: N=20, R=4, L=2, T=10s,
/// (8,6), F=480, W=200 Mbps, S=128MB.
fn setting() -> (ModelParams, Experiment) {
    let params = ModelParams {
        nodes: 20,
        racks: 4,
        map_slots: 2,
        map_time_secs: 10.0,
        block_bytes: 64 * 1024 * 1024,
        rack_bandwidth_bps: 200_000_000,
        num_blocks: 480,
        n: 8,
        k: 6,
    };
    let exp = Experiment {
        topo: Topology::homogeneous(4, 5, 2, 1),
        code: CodeParams::new(8, 6).unwrap(),
        num_blocks: 480,
        placement: PlacementKind::RackAware,
        failure: FailureSpec::RandomSingleNode,
        timeline: dfs::cluster::FailureTimeline::new(),
        config: EngineConfig {
            block_bytes: params.block_bytes,
            net: NetConfig {
                node_bps: 1_000_000_000,
                rack_bps: params.rack_bandwidth_bps,
            },
            // The model has no heartbeat quantization (a freed slot is
            // refilled instantly); shrink the heartbeat so the simulator
            // approximates that assumption.
            heartbeat_period: SimDuration::from_millis(500),
            ..EngineConfig::default()
        },
        jobs: vec![JobSpec::builder("analysis")
            .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
            .map_only()
            .build()],
    };
    (params, exp)
}

#[test]
fn normal_mode_runtime_matches_ft_over_nl() {
    let (params, exp) = setting();
    // Analysis: F*T/(N*L) = 480*10/(20*2) = 120s.
    let predicted = params.normal_runtime();
    let sim = exp.run_normal_mode(1).expect("normal run");
    let actual = sim.jobs[0].runtime().as_secs_f64();
    // The simulator adds heartbeat latency (3s period) and a little
    // non-locality; stay within 15%.
    let ratio = actual / predicted;
    assert!(
        (0.9..1.15).contains(&ratio),
        "normal-mode: sim {actual:.1}s vs model {predicted:.1}s"
    );
}

#[test]
fn locality_first_matches_model_band() {
    let (params, exp) = setting();
    let predicted = params.locality_first_normalized();
    let sweep = sweep_seeds(6, |seed| {
        exp.normalized_runtime(Policy::LocalityFirst, seed).ok()
    });
    let simulated = sweep.mean();
    let ratio = simulated / predicted;
    assert!(
        (0.75..1.3).contains(&ratio),
        "LF: sim {simulated:.3} vs model {predicted:.3}"
    );
}

#[test]
fn degraded_first_matches_model_band() {
    let (params, exp) = setting();
    let predicted = params.degraded_first_normalized();
    let sweep = sweep_seeds(6, |seed| {
        exp.normalized_runtime(Policy::BasicDegradedFirst, seed)
            .ok()
    });
    let simulated = sweep.mean();
    let ratio = simulated / predicted;
    assert!(
        (0.75..1.35).contains(&ratio),
        "DF: sim {simulated:.3} vs model {predicted:.3}"
    );
}

#[test]
fn model_and_sim_agree_on_the_winner() {
    let (params, exp) = setting();
    assert!(params.degraded_first_runtime() < params.locality_first_runtime());
    let lf = sweep_seeds(5, |s| exp.normalized_runtime(Policy::LocalityFirst, s).ok());
    let df = sweep_seeds(5, |s| {
        exp.normalized_runtime(Policy::BasicDegradedFirst, s).ok()
    });
    assert!(
        df.mean() < lf.mean(),
        "sim contradicts the model: DF {:.3} vs LF {:.3}",
        df.mean(),
        lf.mean()
    );
}
