//! Arrival-trace integration: JSONL round-trip, bit-identical replay of
//! a generated Poisson workload, and per-job latency metrics derived
//! from a traced multi-job run.

use proptest::prelude::*;

use dfs::experiment::Policy;
use dfs::obs::aggregate::Aggregator;
use dfs::obs::jsonl::{parse_line, JsonlSink};
use dfs::obs::schema::{validate_jsonl, TraceSchema, TRACE_SCHEMA_V1};
use dfs::obs::sink::EventSink;
use dfs::presets;
use dfs::workloads::{ArrivalTrace, WorkloadError};

/// The Figure 7(f) preset scaled for debug-mode test runs: the same
/// 40-node cluster (the generated reducer counts need its 40 reduce
/// slots), but fewer blocks per job.
fn scaled_fig7f(trace: &ArrivalTrace) -> dfs::Experiment {
    let mut exp = presets::simulation_default().arrivals(trace);
    exp.num_blocks = 240;
    exp
}

proptest! {
    #[test]
    fn poisson_traces_round_trip_through_jsonl(
        seed in 0u64..1_000_000_000,
        count in 1usize..40,
        mean in 1.0f64..600.0,
    ) {
        let trace = ArrivalTrace::poisson(seed, count, mean).expect("valid parameters");
        let replayed = ArrivalTrace::parse_jsonl(&trace.to_jsonl()).expect("round trip");
        prop_assert_eq!(&replayed, &trace);
        // Re-emitting is byte-identical: the on-disk format is canonical.
        prop_assert_eq!(replayed.to_jsonl(), trace.to_jsonl());
    }
}

#[test]
fn replaying_emitted_poisson_trace_is_bit_identical() {
    let trace = ArrivalTrace::poisson(11, 4, 120.0).expect("valid poisson parameters");
    let replayed = ArrivalTrace::parse_jsonl(&trace.to_jsonl()).expect("emitted trace parses");
    assert_eq!(replayed.jobs(), trace.jobs());
    let a = scaled_fig7f(&trace)
        .run(Policy::EnhancedDegradedFirst, 5)
        .expect("generator run");
    let b = scaled_fig7f(&replayed)
        .run(Policy::EnhancedDegradedFirst, 5)
        .expect("replay run");
    assert_eq!(a, b);
}

#[test]
fn traced_multi_job_run_reports_per_job_latency() {
    let trace = ArrivalTrace::poisson(2, 3, 120.0).expect("valid poisson parameters");
    let exp = scaled_fig7f(&trace);
    let mut buf = Vec::new();
    {
        let mut sink = JsonlSink::new(&mut buf);
        exp.run_traced(Policy::EnhancedDegradedFirst, 1, &mut sink)
            .expect("traced run");
        sink.finish().expect("flush");
    }
    let text = String::from_utf8(buf).expect("utf8 trace");
    let schema = TraceSchema::parse(TRACE_SCHEMA_V1).expect("schema");
    assert!(validate_jsonl(&schema, &text).expect("trace validates against v1") > 0);

    let mut agg = Aggregator::new(exp.aggregator_config(1));
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let (at, event) = parse_line(line).expect("parse");
        agg.record(at, &event);
    }
    let r = agg.report();
    assert_eq!(r.jobs_finished, 3);
    assert_eq!(r.job_latency_secs.len(), 3);
    assert_eq!(r.job_queue_delay_secs.len(), 3);
    for (latency, delay) in [
        (r.job_latency_p50, r.job_queue_delay_p50),
        (r.job_latency_p95, r.job_queue_delay_p95),
        (r.job_latency_p99, r.job_queue_delay_p99),
    ] {
        // Completion latency includes queueing, so each percentile
        // dominates its queueing counterpart.
        assert!(latency.expect("latency percentile") >= delay.expect("delay percentile"));
    }
    assert!((1..=3).contains(&r.peak_jobs_in_flight));
    let &(last_t, last_in_flight) = r.jobs_in_flight_steps.last().expect("steps");
    assert_eq!(last_in_flight, 0, "all jobs drained");
    assert!(last_t <= r.makespan_secs);
}

#[test]
fn hand_edited_traces_fail_with_typed_errors() {
    let err = ArrivalTrace::parse_jsonl("{\"submit_us\":0}\n").unwrap_err();
    assert!(matches!(err, WorkloadError::Parse { line: 1, .. }), "{err}");

    let trace = ArrivalTrace::poisson(1, 2, 60.0).expect("valid poisson parameters");
    let mut swapped = trace.into_jobs();
    swapped.reverse();
    let err = ArrivalTrace::from_jobs(swapped).unwrap_err();
    assert!(
        matches!(err, WorkloadError::UnsortedArrivals { index: 1 }),
        "{err}"
    );
}
