//! Mid-run failure injection through the full stack: the churn preset
//! (healthy start, one node failing at 25 s and recovering at 60 s)
//! completes under every policy with lost work re-queued, its traces
//! validate against schema v1 including the node lifecycle events, and
//! the obs aggregator reports the churn counters.

use std::collections::BTreeSet;

use dfs::experiment::Policy;
use dfs::obs::aggregate::Aggregator;
use dfs::obs::event::SimEvent;
use dfs::obs::jsonl::JsonlSink;
use dfs::obs::schema::{validate_jsonl, TraceSchema, TRACE_SCHEMA_V1};
use dfs::obs::sink::VecSink;
use dfs::presets;

const POLICIES: [Policy; 3] = [
    Policy::LocalityFirst,
    Policy::BasicDegradedFirst,
    Policy::EnhancedDegradedFirst,
];

#[test]
fn churn_run_completes_with_requeues_under_every_policy() {
    let exp = presets::churn_default();
    for policy in POLICIES {
        let label = policy.name();
        let mut sink = VecSink::new();
        let result = exp
            .run_traced(policy, 1, &mut sink)
            .unwrap_or_else(|e| panic!("{label}: churn run failed: {e}"));

        // Every block is processed exactly once despite the mid-run kill.
        assert_eq!(result.tasks.len(), exp.num_blocks, "{label}: task records");
        let blocks: BTreeSet<_> = result
            .tasks
            .iter()
            .filter_map(|t| match t.detail {
                dfs::mapreduce::metrics::TaskDetail::Map { block, .. } => Some(block),
                _ => None,
            })
            .collect();
        assert_eq!(blocks.len(), exp.num_blocks, "{label}: unique blocks");
        assert!(
            result.makespan.as_secs_f64() > 60.0,
            "{label}: run must outlive the recovery point"
        );

        // The failure killed running attempts and re-queued their work.
        let count = |pred: &dyn Fn(&SimEvent) -> bool| -> usize {
            sink.events.iter().filter(|(_, e)| pred(e)).count()
        };
        assert_eq!(
            count(&|e| matches!(e, SimEvent::NodeFailed { .. })),
            1,
            "{label}: one failure"
        );
        assert_eq!(
            count(&|e| matches!(e, SimEvent::NodeRecovered { .. })),
            1,
            "{label}: one recovery"
        );
        let cancelled = count(&|e| matches!(e, SimEvent::MapCancelled { .. }));
        assert!(cancelled > 0, "{label}: no attempts were killed");
        let queued = count(&|e| matches!(e, SimEvent::TaskQueued { .. }));
        assert!(
            queued > exp.num_blocks,
            "{label}: lost work was not re-queued ({queued} queued)"
        );
        let launched = count(&|e| matches!(e, SimEvent::MapLaunched { .. }));
        let done = count(&|e| matches!(e, SimEvent::MapDone { .. }));
        assert_eq!(
            launched,
            done + cancelled,
            "{label}: every launch must terminate exactly once"
        );
    }
}

#[test]
fn churn_trace_validates_against_schema_v1() {
    let exp = presets::churn_default();
    for policy in POLICIES {
        let label = policy.name();
        let mut sink = JsonlSink::new(Vec::new());
        exp.run_traced(policy, 1, &mut sink)
            .unwrap_or_else(|e| panic!("{label}: churn run failed: {e}"));
        let text = String::from_utf8(sink.finish().expect("in-memory sink")).expect("utf8");
        let schema = TraceSchema::parse(TRACE_SCHEMA_V1).expect("schema parses");
        let validated = validate_jsonl(&schema, &text)
            .unwrap_or_else(|e| panic!("{label}: churn trace rejected: {e}"));
        assert_eq!(validated, text.lines().count(), "{label}: all lines valid");
        assert!(
            text.lines().any(|l| l.contains("\"node_failed\"")),
            "{label}: trace must record the failure"
        );
        assert!(
            text.lines().any(|l| l.contains("\"node_recovered\"")),
            "{label}: trace must record the recovery"
        );
    }
}

#[test]
fn aggregator_reports_churn_counters() {
    let exp = presets::churn_default();
    let mut agg = Aggregator::new(exp.aggregator_config(1));
    exp.run_traced(Policy::EnhancedDegradedFirst, 1, &mut agg)
        .expect("churn run");
    let r = agg.report();
    assert_eq!(r.nodes_failed, 1);
    assert_eq!(r.nodes_recovered, 1);
    assert!(r.maps_relaunched > 0, "re-queued maps must be counted");
    assert!(
        r.maps_degraded > 0,
        "work lost with its input block should rerun degraded"
    );
}

#[test]
fn churn_runs_are_deterministic() {
    let exp = presets::churn_default();
    let a = exp.run(Policy::LocalityFirst, 3).expect("a");
    let b = exp.run(Policy::LocalityFirst, 3).expect("b");
    assert_eq!(a, b, "churn replay diverged");
}
