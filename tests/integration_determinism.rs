//! Reproducibility: a run is a pure function of its configuration and
//! seed, across repeats and across thread schedules.

use dfs::experiment::Policy;
use dfs::presets;
use dfs::sweep::sweep_seeds;

#[test]
fn identical_seeds_reproduce_bit_identically() {
    let exp = presets::small_default();
    for policy in [Policy::LocalityFirst, Policy::EnhancedDegradedFirst] {
        let a = exp.run(policy, 11).expect("a");
        let b = exp.run(policy, 11).expect("b");
        assert_eq!(a, b, "{} replay diverged", policy.name());
    }
}

#[test]
fn different_seeds_differ() {
    let exp = presets::small_default();
    let a = exp.run(Policy::LocalityFirst, 1).expect("a");
    let b = exp.run(Policy::LocalityFirst, 2).expect("b");
    assert_ne!(a, b, "different seeds should vary placement/failure");
}

#[test]
fn parallel_sweep_is_deterministic() {
    let exp = presets::small_default();
    let run = || {
        sweep_seeds(6, |seed| {
            exp.normalized_runtime(Policy::EnhancedDegradedFirst, seed)
                .ok()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.samples, b.samples,
        "thread scheduling leaked into results"
    );
}

#[test]
fn runs_across_threads_match_runs_in_sequence() {
    let exp = presets::small_default();
    let sequential: Vec<f64> = (0..4)
        .map(|seed| {
            exp.normalized_runtime(Policy::BasicDegradedFirst, seed)
                .expect("seq run")
        })
        .collect();
    let parallel = sweep_seeds(4, |seed| {
        exp.normalized_runtime(Policy::BasicDegradedFirst, seed)
            .ok()
    });
    assert_eq!(parallel.samples, sequential);
}

/// FNV-1a over the full `Debug` rendering of a run (which prints every
/// task record and f64 in round-trippable form), so any behavioral
/// drift — scheduling order, rates, timestamps — changes the digest.
fn run_digest(exp: &dfs::experiment::Experiment, policy: Policy, seed: u64) -> u64 {
    let result = exp.run(policy, seed).expect("run");
    let rendered = format!("{result:?}|{:016x}", result.makespan.as_micros());
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rendered.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn fixed_seed_goldens_are_stable() {
    // Golden digests of fixed-seed runs, captured from the current
    // implementation after verifying it bit-identical to the original
    // naive kernels (fairshare, calendar, GF(256) all rewritten since).
    // A mismatch means simulation behavior changed — any intentional
    // change must re-derive these constants and say so in review.
    let small = presets::small_default();
    let paper = presets::simulation_default();
    let cases: [(&dfs::experiment::Experiment, Policy, u64, u64); 4] = [
        (&small, Policy::BasicDegradedFirst, 0, GOLDEN_SMALL_BDF_0),
        (&small, Policy::LocalityFirst, 7, GOLDEN_SMALL_LF_7),
        (&paper, Policy::LocalityFirst, 1, GOLDEN_PAPER_LF_1),
        (&paper, Policy::EnhancedDegradedFirst, 1, GOLDEN_PAPER_EDF_1),
    ];
    let digests: Vec<u64> = cases
        .iter()
        .map(|&(exp, policy, seed, _)| run_digest(exp, policy, seed))
        .collect();
    for (&(_, policy, seed, want), &got) in cases.iter().zip(&digests) {
        assert_eq!(
            got,
            want,
            "golden digest drifted for {} seed {seed}: got {got:#018x}",
            policy.name()
        );
    }
}

const GOLDEN_SMALL_BDF_0: u64 = 0x272c_a9b3_3af9_a6d6;
const GOLDEN_SMALL_LF_7: u64 = 0x8a6b_9c51_4140_35c1;
const GOLDEN_PAPER_LF_1: u64 = 0xcdbe_acee_8e09_fe22;
const GOLDEN_PAPER_EDF_1: u64 = 0x8605_ddd2_9a0d_7d61;

/// A failure timeline whose events all fire at t=0 is just another way
/// of writing a static failure scenario: expressing the goldens' seeds
/// that way must reproduce the same digests bit for bit.
#[test]
fn timeline_at_zero_reproduces_scenario_goldens() {
    use dfs::cluster::FailureTimeline;
    use dfs::experiment::FailureSpec;
    use dfs::simkit::time::SimTime;

    let cases: [(Policy, u64, u64); 2] = [
        (Policy::BasicDegradedFirst, 0, GOLDEN_SMALL_BDF_0),
        (Policy::LocalityFirst, 7, GOLDEN_SMALL_LF_7),
    ];
    for (policy, seed, want) in cases {
        let mut exp = presets::small_default();
        let scenario = exp.failure_for_seed(seed);
        let mut timeline = FailureTimeline::new();
        for node in scenario.failed_nodes(&exp.topo) {
            timeline = timeline.fail_node_at(node, SimTime::ZERO);
        }
        exp.failure = FailureSpec::None;
        exp.timeline = timeline;
        let got = run_digest(&exp, policy, seed);
        assert_eq!(
            got,
            want,
            "t=0 timeline diverged from the scenario golden for {} seed {seed}",
            policy.name()
        );
    }
}

#[test]
fn textlab_grid_is_deterministic() {
    use dfs::cluster::{NodeId, Topology};
    use dfs::erasure::CodeParams;
    use dfs::textlab::{run_job, CorpusBuilder, MiniGrid, WordCount};

    let text = CorpusBuilder::new(31).lines(1500).build();
    let make = || {
        let topo = Topology::homogeneous(2, 3, 2, 1);
        let mut g = MiniGrid::new(topo, CodeParams::new(4, 2).unwrap(), 2048, &text, 9).unwrap();
        g.fail_node(NodeId(1));
        g
    };
    let a = run_job(&mut make(), &WordCount).unwrap();
    let b = run_job(&mut make(), &WordCount).unwrap();
    assert_eq!(a, b);
}
