//! Reproducibility: a run is a pure function of its configuration and
//! seed, across repeats and across thread schedules.

use dfs::experiment::Policy;
use dfs::presets;
use dfs::sweep::sweep_seeds;

#[test]
fn identical_seeds_reproduce_bit_identically() {
    let exp = presets::small_default();
    for policy in [Policy::LocalityFirst, Policy::EnhancedDegradedFirst] {
        let a = exp.run(policy, 11).expect("a");
        let b = exp.run(policy, 11).expect("b");
        assert_eq!(a, b, "{} replay diverged", policy.name());
    }
}

#[test]
fn different_seeds_differ() {
    let exp = presets::small_default();
    let a = exp.run(Policy::LocalityFirst, 1).expect("a");
    let b = exp.run(Policy::LocalityFirst, 2).expect("b");
    assert_ne!(a, b, "different seeds should vary placement/failure");
}

#[test]
fn parallel_sweep_is_deterministic() {
    let exp = presets::small_default();
    let run = || {
        sweep_seeds(6, |seed| {
            exp.normalized_runtime(Policy::EnhancedDegradedFirst, seed).ok()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.samples, b.samples, "thread scheduling leaked into results");
}

#[test]
fn runs_across_threads_match_runs_in_sequence() {
    let exp = presets::small_default();
    let sequential: Vec<f64> = (0..4)
        .map(|seed| {
            exp.normalized_runtime(Policy::BasicDegradedFirst, seed)
                .expect("seq run")
        })
        .collect();
    let parallel = sweep_seeds(4, |seed| {
        exp.normalized_runtime(Policy::BasicDegradedFirst, seed).ok()
    });
    assert_eq!(parallel.samples, sequential);
}

#[test]
fn textlab_grid_is_deterministic() {
    use dfs::cluster::{NodeId, Topology};
    use dfs::erasure::CodeParams;
    use dfs::textlab::{run_job, CorpusBuilder, MiniGrid, WordCount};

    let text = CorpusBuilder::new(31).lines(1500).build();
    let make = || {
        let topo = Topology::homogeneous(2, 3, 2, 1);
        let mut g = MiniGrid::new(topo, CodeParams::new(4, 2).unwrap(), 2048, &text, 9).unwrap();
        g.fail_node(NodeId(1));
        g
    };
    let a = run_job(&mut make(), &WordCount).unwrap();
    let b = run_job(&mut make(), &WordCount).unwrap();
    assert_eq!(a, b);
}
