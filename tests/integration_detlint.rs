//! In-process detlint run over the whole workspace: the tree must be
//! finding-free, and the engine must still catch seeded violations
//! (so a green run means "checked and clean", not "checked nothing").

use detlint::{check_workspace, lint_source, render_human, Config, FileContext, RuleId};

fn repo_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the workspace root is two up.
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn workspace_is_finding_free() {
    let findings = check_workspace(&repo_root(), &Config::default()).expect("walk crates/");
    assert!(
        findings.is_empty(),
        "detlint found {} finding(s) in the workspace:\n{}",
        findings.len(),
        render_human(&findings)
    );
}

#[test]
fn seeded_violation_is_caught() {
    // Guard against the lint engine rotting into a no-op: a known-bad
    // source linted under a determinism crate must produce findings.
    let src = "fn f(m: &std::collections::HashMap<u32, u32>) {\n    for (k, v) in m.iter() {\n        let _ = (k, v);\n    }\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n";
    let ctx = FileContext::from_repo_path("crates/scheduler/src/seeded.rs");
    let findings = lint_source(src, &ctx, &Config::default());
    assert!(
        findings.iter().any(|f| f.rule == RuleId::D1),
        "seeded HashMap iteration not caught: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == RuleId::D2),
        "seeded Instant::now not caught: {findings:?}"
    );
}

#[test]
fn allow_without_reason_is_flagged() {
    let src = "// detlint::allow(D2)\nlet t = std::time::Instant::now();\n";
    let ctx = FileContext::from_repo_path("crates/scheduler/src/seeded.rs");
    let findings = lint_source(src, &ctx, &Config::default());
    assert!(
        findings.iter().any(|f| f.rule == RuleId::A0),
        "reason-less allow not flagged: {findings:?}"
    );
}
