//! In-process detlint run over the whole workspace: the tree must be
//! finding-free, and the engine must still catch seeded violations
//! (so a green run means "checked and clean", not "checked nothing").

use detlint::{
    check_workspace, lint_files, lint_source, read_workspace, render_human, render_json, Config,
    FileContext, RuleId,
};
use proptest::prelude::*;

fn repo_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the workspace root is two up.
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn workspace_is_finding_free() {
    let findings = check_workspace(&repo_root(), &Config::default()).expect("walk crates/");
    assert!(
        findings.is_empty(),
        "detlint found {} finding(s) in the workspace:\n{}",
        findings.len(),
        render_human(&findings)
    );
}

#[test]
fn seeded_violation_is_caught() {
    // Guard against the lint engine rotting into a no-op: a known-bad
    // source linted under a determinism crate must produce findings.
    let src = "fn f(m: &std::collections::HashMap<u32, u32>) {\n    for (k, v) in m.iter() {\n        let _ = (k, v);\n    }\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n";
    let ctx = FileContext::from_repo_path("crates/scheduler/src/seeded.rs");
    let findings = lint_source(src, &ctx, &Config::default());
    assert!(
        findings.iter().any(|f| f.rule == RuleId::D1),
        "seeded HashMap iteration not caught: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == RuleId::D2),
        "seeded Instant::now not caught: {findings:?}"
    );
}

#[test]
fn allow_without_reason_is_flagged() {
    let src = "// detlint::allow(D2)\nlet t = std::time::Instant::now();\n";
    let ctx = FileContext::from_repo_path("crates/scheduler/src/seeded.rs");
    let findings = lint_source(src, &ctx, &Config::default());
    assert!(
        findings.iter().any(|f| f.rule == RuleId::A0),
        "reason-less allow not flagged: {findings:?}"
    );
}

/// Lints pretend-path/source pairs through the full two-phase engine.
fn lint_pretend(files: &[(&str, &str)]) -> Vec<detlint::Finding> {
    let files: Vec<(FileContext, String)> = files
        .iter()
        .map(|(path, src)| (FileContext::from_repo_path(path), src.to_string()))
        .collect();
    lint_files(&files, &Config::default())
}

#[test]
fn seeded_magic_fork_label_is_caught() {
    let findings = lint_pretend(&[(
        "crates/mapreduce/src/seeded.rs",
        "fn f(root: &mut SimRng) {\n    let _rng = root.fork(3);\n}\n",
    )]);
    assert!(
        findings.iter().any(|f| f.rule == RuleId::R1),
        "seeded magic fork label not caught: {findings:?}"
    );
}

#[test]
fn seeded_duplicate_stream_values_are_caught() {
    // Two constants in different files of the same crate carrying the
    // same label value alias a single RNG stream.
    let findings = lint_pretend(&[
        ("crates/mapreduce/src/a.rs", "const PICK_STREAM: u64 = 9;\n"),
        ("crates/mapreduce/src/b.rs", "const POKE_STREAM: u64 = 9;\n"),
    ]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == RuleId::R1 && f.message.contains("duplicates label value")),
        "seeded duplicate stream values not caught: {findings:?}"
    );
}

#[test]
fn seeded_missing_safety_comment_is_caught() {
    let findings = lint_pretend(&[("crates/erasure/src/simd/seeded.rs", "unsafe fn f() {}\n")]);
    assert!(
        findings.iter().any(|f| f.rule == RuleId::U2),
        "seeded SAFETY-less unsafe not caught: {findings:?}"
    );
}

#[test]
fn seeded_event_wildcard_arm_is_caught() {
    let findings = lint_pretend(&[(
        "crates/obs/src/sink.rs",
        "fn f(ev: &SimEvent) -> u32 {\n    match ev {\n        SimEvent::JobStarted { .. } => 1,\n        _ => 0,\n    }\n}\n",
    )]);
    assert!(
        findings.iter().any(|f| f.rule == RuleId::M1),
        "seeded SimEvent wildcard arm not caught: {findings:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The report is a function of the file *set*, not the scan
    /// order: shuffling the workspace file list arbitrarily yields a
    /// byte-identical JSON report.
    #[test]
    fn report_is_independent_of_file_scan_order(seed in any::<u64>()) {
        let cfg = Config::default();
        let mut files = read_workspace(&repo_root()).expect("walk crates/");
        let baseline = render_json(&lint_files(&files, &cfg));
        // Fisher–Yates with a local LCG; proptest only supplies the seed.
        let mut state = seed | 1;
        for i in (1..files.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            files.swap(i, j);
        }
        let shuffled = render_json(&lint_files(&files, &cfg));
        prop_assert_eq!(baseline, shuffled);
    }
}
