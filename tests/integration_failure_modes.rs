//! Failure-pattern integration: single-node, double-node and full-rack
//! failures (the Figure 7(d) scenarios) through the whole stack.

use dfs::experiment::{FailureSpec, Policy};
use dfs::mapreduce::MapLocality;
use dfs::presets;

#[test]
fn single_double_rack_failures_all_complete() {
    let mut worst_runtime = 0.0f64;
    let mut runtimes = Vec::new();
    for failure in [
        FailureSpec::RandomSingleNode,
        FailureSpec::RandomDoubleNode,
        FailureSpec::RandomRack,
    ] {
        let mut exp = presets::small_default();
        exp.failure = failure.clone();
        // Try a few seeds; random double/rack failures may destroy a
        // stripe for some placements, which must surface as a clean
        // error, not a bad run.
        let mut completed = 0;
        let mut norm_sum = 0.0;
        for seed in 0..6 {
            match exp.normalized_runtime(Policy::EnhancedDegradedFirst, seed) {
                Ok(norm) => {
                    assert!(
                        norm >= 1.0,
                        "{failure:?} seed {seed}: normalized {norm} < 1"
                    );
                    completed += 1;
                    norm_sum += norm;
                }
                Err(e) => {
                    let msg = e.to_string();
                    assert!(
                        msg.contains("unrecoverable"),
                        "unexpected error for {failure:?} seed {seed}: {msg}"
                    );
                }
            }
        }
        assert!(
            completed >= 3,
            "{failure:?}: only {completed} seeds completed"
        );
        let mean = norm_sum / completed as f64;
        runtimes.push(mean);
        worst_runtime = worst_runtime.max(mean);
    }
    // More failures => slower (paper Fig. 7(d) ordering), with slack for
    // small-sample noise.
    assert!(
        runtimes[0] <= runtimes[2] * 1.1,
        "single-node {:.3} should be <= rack {:.3}",
        runtimes[0],
        runtimes[2]
    );
}

#[test]
fn double_failure_doubles_degraded_work() {
    let mut exp = presets::small_default();
    exp.failure = FailureSpec::RandomSingleNode;
    let single = exp.run(Policy::LocalityFirst, 1).expect("single");
    exp.failure = FailureSpec::RandomDoubleNode;
    // Find a seed whose double failure is recoverable.
    let double = (0..10)
        .find_map(|seed| exp.run(Policy::LocalityFirst, seed).ok())
        .expect("some recoverable double failure");
    assert!(
        double.map_count(MapLocality::Degraded) > single.map_count(MapLocality::Degraded),
        "double failure should lose more blocks"
    );
}

#[test]
fn rack_failure_reads_come_from_surviving_racks() {
    let mut exp = presets::small_default();
    exp.failure = FailureSpec::RandomRack;
    let seed = (0..10)
        .find(|&s| exp.run(Policy::EnhancedDegradedFirst, s).is_ok())
        .expect("recoverable rack failure");
    let state = exp.cluster_state_for_seed(seed);
    let result = exp.run(Policy::EnhancedDegradedFirst, seed).expect("run");
    // A quarter of the cluster is gone.
    assert_eq!(state.failed_nodes().len(), 4);
    // No task ran on a dead node.
    for t in &result.tasks {
        assert!(state.is_alive(t.node), "task ran on dead {}", t.node);
    }
    // Degraded tasks exist and every lost native was processed.
    assert!(result.map_count(MapLocality::Degraded) > 0);
}

#[test]
fn explicit_node_failure_is_honored() {
    let mut exp = presets::small_default();
    let victim = exp.topo.node(3);
    exp.failure = FailureSpec::Nodes(vec![victim]);
    let state = exp.cluster_state_for_seed(42);
    assert_eq!(state.failed_nodes(), vec![victim]);
    let result = exp.run(Policy::BasicDegradedFirst, 42).expect("run");
    assert!(result.tasks.iter().all(|t| t.node != victim));
}

#[test]
fn normal_mode_spec_runs_like_normal_mode() {
    let mut exp = presets::small_default();
    exp.failure = FailureSpec::None;
    let norm = exp
        .normalized_runtime(Policy::EnhancedDegradedFirst, 5)
        .expect("run");
    assert!((norm - 1.0).abs() < 1e-9, "normalized runtime {norm} != 1");
}
