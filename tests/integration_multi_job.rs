//! Multi-job FIFO integration (the Figure 7(f) scenario, scaled down).

use dfs::experiment::Policy;
use dfs::presets;
use dfs::simkit::time::SimDuration;
use dfs::simkit::SimRng;
use dfs::workloads::multi_job_workload;

fn multi_job_experiment(jobs: usize) -> dfs::Experiment {
    let mut exp = presets::small_default();
    let mut rng = SimRng::seed_from_u64(7);
    let mut specs = multi_job_workload(&mut rng, jobs, 60.0).expect("valid workload parameters");
    for spec in &mut specs {
        // Scale the jobs to the small cluster: shorter tasks, fewer
        // reducers than the 16 reduce slots available.
        spec.map_time_mean = SimDuration::from_secs(10);
        spec.map_time_std = SimDuration::from_secs(1);
        spec.reduce_time_mean = SimDuration::from_secs(15);
        spec.reduce_time_std = SimDuration::from_secs(1);
        spec.num_reduce_tasks = 8;
    }
    exp.jobs = specs;
    exp
}

#[test]
fn all_jobs_finish_in_fifo_dominance() {
    let exp = multi_job_experiment(4);
    let result = exp.run(Policy::EnhancedDegradedFirst, 1).expect("run");
    assert_eq!(result.jobs.len(), 4);
    // Every job's tasks are accounted for: maps + reduces.
    for (i, job) in result.jobs.iter().enumerate() {
        let tasks = result.tasks.iter().filter(|t| t.job == job.id).count();
        assert_eq!(
            tasks,
            exp.num_blocks + exp.jobs[i].num_reduce_tasks,
            "job {i} task count"
        );
        assert!(job.started_at >= job.submitted_at);
    }
    // FIFO: earlier-submitted jobs start first.
    for pair in result.jobs.windows(2) {
        assert!(pair[0].started_at <= pair[1].started_at);
    }
}

#[test]
fn edf_improves_most_jobs() {
    let exp = multi_job_experiment(3);
    let lf = exp
        .normalized_runtimes(Policy::LocalityFirst, 2)
        .expect("LF");
    let edf = exp
        .normalized_runtimes(Policy::EnhancedDegradedFirst, 2)
        .expect("EDF");
    assert_eq!(lf.len(), 3);
    assert_eq!(edf.len(), 3);
    let improved = lf.iter().zip(&edf).filter(|(l, e)| e < l).count();
    assert!(
        improved >= 2,
        "EDF improved only {improved}/3 jobs: lf={lf:?} edf={edf:?}"
    );
}

#[test]
fn queueing_delays_show_in_turnaround() {
    let exp = multi_job_experiment(3);
    let result = exp.run(Policy::LocalityFirst, 3).expect("run");
    for job in &result.jobs {
        assert!(job.turnaround() >= job.runtime());
    }
    // The last job's turnaround should include waiting on predecessors:
    // its maps can only run once slots free up.
    let last = result.jobs.last().unwrap();
    assert!(last.turnaround() > last.runtime());
}

#[test]
fn deterministic_multi_job_replay() {
    let exp = multi_job_experiment(3);
    let a = exp.run(Policy::BasicDegradedFirst, 5).expect("a");
    let b = exp.run(Policy::BasicDegradedFirst, 5).expect("b");
    assert_eq!(a, b);
}
