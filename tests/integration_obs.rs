//! Integration of the `obs` tracing subsystem with the full stack:
//! the aggregator sink re-derives `mapreduce::metrics` exactly, the
//! event stream is a deterministic function of configuration and seed
//! (golden digests), the exporters produce valid output, and recorded
//! streams obey their per-lane lifecycle invariants.

use std::collections::BTreeMap;

use dfs::experiment::{Experiment, Policy};
use dfs::mapreduce::metrics::TaskDetail;
use dfs::mapreduce::{MapLocality, RunResult};
use dfs::obs::aggregate::Aggregator;
use dfs::obs::chrome::ChromeTraceSink;
use dfs::obs::event::{DegradedPhase, Lane, SimEvent};
use dfs::obs::json::Json;
use dfs::obs::jsonl::{event_to_json, parse_line, JsonlSink};
use dfs::obs::schema::{validate_jsonl, TraceSchema, TRACE_SCHEMA_V1};
use dfs::obs::sink::VecSink;
use dfs::presets;
use dfs::simkit::time::SimTime;
use proptest::prelude::*;

const POLICIES: [Policy; 3] = [
    Policy::LocalityFirst,
    Policy::BasicDegradedFirst,
    Policy::EnhancedDegradedFirst,
];

/// Runs `exp` traced into a buffering sink.
fn trace(exp: &Experiment, policy: Policy, seed: u64) -> (RunResult, Vec<(SimTime, SimEvent)>) {
    let mut sink = VecSink::new();
    let result = exp.run_traced(policy, seed, &mut sink).expect("traced run");
    (result, sink.events)
}

/// Asserts every aggregator-derived counter equals its
/// `mapreduce::metrics` twin — exactly, including f64 bit patterns,
/// which both sides guarantee by summing in completion order.
fn assert_counters_match(exp: &Experiment, policy: Policy, seed: u64) {
    let mut agg = Aggregator::new(exp.aggregator_config(seed));
    let result = exp.run_traced(policy, seed, &mut agg).expect("traced run");
    let r = agg.report();
    let label = format!("{} seed {seed}", policy.name());
    assert_eq!(
        r.maps_node_local,
        result.map_count(MapLocality::NodeLocal),
        "{label}: node-local"
    );
    assert_eq!(
        r.maps_rack_local,
        result.map_count(MapLocality::RackLocal),
        "{label}: rack-local"
    );
    assert_eq!(
        r.maps_remote,
        result.map_count(MapLocality::Remote),
        "{label}: remote"
    );
    assert_eq!(
        r.maps_degraded,
        result.map_count(MapLocality::Degraded),
        "{label}: degraded"
    );
    let reduces = result
        .tasks
        .iter()
        .filter(|t| matches!(t.detail, TaskDetail::Reduce { .. }))
        .count();
    assert_eq!(r.reduces, reduces, "{label}: reduces");
    assert_eq!(r.jobs_finished, result.jobs.len(), "{label}: jobs");
    assert_eq!(
        r.degraded_read_secs,
        result.degraded_read_secs(),
        "{label}: degraded read times must match element-wise"
    );
    assert_eq!(
        r.mean_normal_map_secs,
        result.mean_normal_map_secs(),
        "{label}: mean normal map"
    );
    assert_eq!(
        r.mean_degraded_map_secs,
        result.mean_degraded_map_secs(),
        "{label}: mean degraded map"
    );
    assert_eq!(
        r.mean_reduce_secs,
        result.mean_reduce_secs(),
        "{label}: mean reduce"
    );
    assert!(
        r.makespan_secs <= result.makespan.as_secs_f64() + 1e-12,
        "{label}: last event at {} but makespan is {}",
        r.makespan_secs,
        result.makespan.as_secs_f64()
    );
}

#[test]
fn aggregator_rederives_metrics_counters_exactly() {
    let small = presets::small_default();
    for policy in POLICIES {
        for seed in [1, 2] {
            assert_counters_match(&small, policy, seed);
        }
    }
    // The paper preset adds reduce tasks and speculation to the mix.
    let paper = presets::simulation_default();
    assert_counters_match(&paper, Policy::EnhancedDegradedFirst, 1);
    assert_counters_match(&paper, Policy::LocalityFirst, 1);
}

#[test]
fn windowed_aggregator_matches_exact_on_paper_presets() {
    use dfs::obs::aggregate::{AggregatorConfig, AggregatorMode};
    use dfs::simkit::stats::QuantileSketch;
    // Windowed mode on the Fig. 7 presets: utilization identical when
    // the window equals the exact bucket, counts/means exact, and every
    // sketch percentile within its documented relative-error bound of
    // the sample it estimates (the rounded-rank order statistic; the
    // exact report interpolates between neighbours, which for sparse
    // samples can sit arbitrarily far from either).
    let close = |got: Option<f64>, samples: &[f64], p: f64, what: &str| {
        if samples.is_empty() {
            assert!(
                got.is_none(),
                "{what}: sketch reported {got:?} for no samples"
            );
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let want = sorted[(p * (sorted.len() - 1) as f64).round() as usize];
        let g = got.unwrap_or_else(|| panic!("{what}: sketch empty but exact has samples"));
        assert!(
            (g - want).abs() <= want.abs() * QuantileSketch::RELATIVE_ERROR + 1e-9,
            "{what}: windowed {g} vs exact rank sample {want}"
        );
    };
    for exp in [presets::small_default(), presets::simulation_default()] {
        for policy in [Policy::LocalityFirst, Policy::EnhancedDegradedFirst] {
            let cfg = exp.aggregator_config(1);
            let mut exact = Aggregator::new(cfg.clone());
            let mut windowed = Aggregator::new(AggregatorConfig {
                mode: AggregatorMode::Windowed {
                    window_secs: cfg.bucket.as_micros() / 1_000_000,
                    max_windows: 4096,
                },
                ..cfg
            });
            let mut tee = dfs::obs::sink::Tee::new(&mut exact, &mut windowed);
            exp.run_traced(policy, 1, &mut tee).expect("traced run");
            let re = exact.report();
            let rw = windowed.report();
            let label = policy.name();
            assert_eq!(rw.slot_utilization, re.slot_utilization, "{label}: util");
            assert_eq!(rw.bucket_secs, re.bucket_secs, "{label}: bucket");
            assert_eq!(rw.link_utilization, re.link_utilization, "{label}: links");
            assert_eq!(rw.maps_degraded, re.maps_degraded, "{label}: degraded");
            assert_eq!(rw.jobs_finished, re.jobs_finished, "{label}: jobs");
            assert_eq!(rw.overlap_secs, re.overlap_secs, "{label}: overlap");
            assert_eq!(
                rw.mean_degraded_map_secs, re.mean_degraded_map_secs,
                "{label}: mean degraded"
            );
            assert_eq!(
                rw.peak_jobs_in_flight, re.peak_jobs_in_flight,
                "{label}: peak jobs"
            );
            close(
                rw.degraded_read_p50,
                &re.degraded_read_secs,
                0.50,
                "fetch p50",
            );
            close(
                rw.degraded_read_p95,
                &re.degraded_read_secs,
                0.95,
                "fetch p95",
            );
            close(
                rw.degraded_read_p99,
                &re.degraded_read_secs,
                0.99,
                "fetch p99",
            );
            close(
                rw.job_latency_p50,
                &re.job_latency_secs,
                0.50,
                "latency p50",
            );
            close(
                rw.job_latency_p95,
                &re.job_latency_secs,
                0.95,
                "latency p95",
            );
            close(
                rw.job_latency_p99,
                &re.job_latency_secs,
                0.99,
                "latency p99",
            );
        }
    }
}

#[test]
fn traced_run_returns_untraced_results() {
    let exp = presets::small_default();
    for policy in POLICIES {
        let plain = exp.run(policy, 3).expect("plain run");
        let (traced, events) = trace(&exp, policy, 3);
        assert_eq!(plain, traced, "{} diverged under tracing", policy.name());
        assert!(!events.is_empty());
    }
}

/// FNV-1a over the exact JSONL bytes of a traced run.
fn stream_digest(exp: &Experiment, policy: Policy, seed: u64) -> (u64, usize) {
    let mut sink = JsonlSink::new(Vec::new());
    exp.run_traced(policy, seed, &mut sink).expect("traced run");
    let bytes = sink.finish().expect("in-memory sink");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h, bytes.len())
}

// Golden digests of the full JSONL event stream on the paper's
// simulation preset (the Figure 7 configuration), seed 1. A mismatch
// means the instrumentation or the simulation itself changed behaviour —
// an intentional change must re-derive these and call it out in review.
const GOLDEN_STREAM_PAPER_LF_1: u64 = 0x04a9_0961_391c_501b;
const GOLDEN_STREAM_PAPER_BDF_1: u64 = 0xefc7_4107_2fe1_deef;
const GOLDEN_STREAM_PAPER_EDF_1: u64 = 0xb71a_069b_b5de_1909;

#[test]
fn event_stream_goldens_are_stable() {
    let paper = presets::simulation_default();
    let cases: [(Policy, u64); 3] = [
        (Policy::LocalityFirst, GOLDEN_STREAM_PAPER_LF_1),
        (Policy::BasicDegradedFirst, GOLDEN_STREAM_PAPER_BDF_1),
        (Policy::EnhancedDegradedFirst, GOLDEN_STREAM_PAPER_EDF_1),
    ];
    let mut drifted = Vec::new();
    for (policy, want) in cases {
        let (a, len_a) = stream_digest(&paper, policy, 1);
        let (b, len_b) = stream_digest(&paper, policy, 1);
        assert_eq!(
            (a, len_a),
            (b, len_b),
            "{}: repeated traces must be byte-identical",
            policy.name()
        );
        if a != want {
            drifted.push(format!(
                "{} seed 1: got {a:#018x} ({len_a} bytes), want {want:#018x}",
                policy.name()
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "event-stream goldens drifted:\n{}",
        drifted.join("\n")
    );
}

#[test]
fn flow_rate_filter_off_is_byte_identical_and_on_thins_stream() {
    use dfs::obs::sink::{FlowRateFilter, FlowRateFilterConfig};
    use dfs::simkit::time::SimDuration;
    let paper = presets::simulation_default();
    let stream = |filter: Option<FlowRateFilterConfig>| -> String {
        let mut sink = JsonlSink::new(Vec::new());
        match filter {
            Some(cfg) => {
                let mut f = FlowRateFilter::new(&mut sink, cfg);
                paper
                    .run_traced(Policy::EnhancedDegradedFirst, 1, &mut f)
                    .expect("traced run");
            }
            None => {
                paper
                    .run_traced(Policy::EnhancedDegradedFirst, 1, &mut sink)
                    .expect("traced run");
            }
        }
        String::from_utf8(sink.finish().expect("in-memory sink")).expect("utf8")
    };
    let plain = stream(None);
    // An attached filter with zero thresholds must not change a byte.
    let zeroed = stream(Some(FlowRateFilterConfig {
        min_delta_bps: 0.0,
        min_interval: SimDuration::ZERO,
    }));
    assert_eq!(plain, zeroed, "zero-threshold filter changed the stream");
    // Real thresholds must drop flow_rate lines and nothing else, and the
    // thinned stream must still validate against the schema.
    let thinned = stream(Some(FlowRateFilterConfig {
        min_delta_bps: 1e6,
        min_interval: SimDuration::from_secs(5),
    }));
    let rates = |s: &str| {
        s.lines()
            .filter(|l| l.contains("\"ev\":\"flow_rate\""))
            .count()
    };
    let others = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("\"ev\":\"flow_rate\""))
            .count()
    };
    assert!(
        rates(&thinned) < rates(&plain),
        "filter dropped no flow_rate events ({} vs {})",
        rates(&thinned),
        rates(&plain)
    );
    assert_eq!(others(&thinned), others(&plain), "non-rate events changed");
    let schema = TraceSchema::parse(TRACE_SCHEMA_V1).expect("schema parses");
    assert_eq!(
        validate_jsonl(&schema, &thinned).expect("thinned trace validates"),
        thinned.lines().count()
    );
}

#[test]
fn trace_diff_attributes_an_injected_failure() {
    use dfs::experiment::FailureSpec;
    use dfs::obs::diff::{diff_streams, render};
    // Same preset, same seed, one injected failure: the diff must pin
    // the slowdown on the failure-affected lanes. The rendered text is
    // golden — it is a deterministic function of the two traces.
    let failed = presets::small_default();
    let mut healthy = failed.clone();
    healthy.failure = FailureSpec::None;
    let (_, a) = trace(&healthy, Policy::LocalityFirst, 1);
    let (_, b) = trace(&failed, Policy::LocalityFirst, 1);
    let diff = diff_streams(&a, &b, 5);
    assert!(
        diff.makespan_b > diff.makespan_a,
        "injected failure must slow the run ({} vs {})",
        diff.makespan_a,
        diff.makespan_b
    );
    let text = render(&diff);
    let golden = "\
makespan: A 170.10s  B 450.73s  (+280.64s)\n\
final lane: A job 0  B job 0\n\
lanes: 255 shared, 0 only in A, 76 only in B\n\
top end shifts (B - A):\n\
\x20 map 0/199                end   +405.36s  dur   +405.36s  (A 0.00..12.06, B 0.00..417.42)\n\
\x20 map 0/205                end   +405.36s  dur   +405.36s  (A 0.00..12.06, B 0.00..417.42)\n\
\x20 map 0/106                end   +401.97s  dur   +401.97s  (A 0.00..48.06, B 0.00..450.04)\n\
\x20 map 0/110                end   +401.97s  dur   +401.97s  (A 0.00..48.06, B 0.00..450.04)\n\
\x20 map 0/176                end   +393.76s  dur   +393.76s  (A 0.00..24.06, B 0.00..417.82)\n\
only in B:\n\
\x20 flow 14                  85.80..407.42 (8 events)\n\
\x20 flow 15                  85.80..407.42 (8 events)\n\
\x20 flow 16                  85.80..407.42 (8 events)\n\
\x20 flow 17                  85.80..407.42 (8 events)\n\
\x20 flow 18                  85.80..407.42 (8 events)\n\
\x20 flow 19                  85.80..407.42 (7 events)\n\
\x20 flow 20                  85.80..407.42 (7 events)\n\
\x20 flow 21                  85.80..407.42 (7 events)\n\
\x20 flow 22                  85.80..407.42 (7 events)\n\
\x20 flow 23                  85.80..87.83 (12 events)\n\
\x20 flow 24                  85.80..407.42 (7 events)\n\
\x20 flow 25                  86.00..407.82 (7 events)\n\
\x20 ... and 64 more\n";
    assert_eq!(
        text, golden,
        "trace-diff golden drifted — an intentional change must re-pin it"
    );
}

#[test]
fn jsonl_lines_round_trip_and_validate() {
    let exp = presets::small_default();
    let mut sink = JsonlSink::new(Vec::new());
    exp.run_traced(Policy::EnhancedDegradedFirst, 1, &mut sink)
        .expect("traced run");
    let text = String::from_utf8(sink.finish().expect("in-memory sink")).expect("utf8");
    let schema = TraceSchema::parse(TRACE_SCHEMA_V1).expect("schema parses");
    let validated = validate_jsonl(&schema, &text).expect("trace validates");
    assert_eq!(validated, text.lines().count());
    assert!(validated > 100, "expected a substantial stream");
    for line in text.lines() {
        let (at, event) = parse_line(line).expect(line);
        assert_eq!(event_to_json(at, &event), line, "round-trip changed bytes");
    }
}

#[test]
fn chrome_trace_of_paper_preset_is_valid_json() {
    let exp = presets::simulation_default();
    let mut sink = ChromeTraceSink::new(Vec::new(), exp.chrome_config());
    exp.run_traced(Policy::EnhancedDegradedFirst, 1, &mut sink)
        .expect("traced run");
    let text = String::from_utf8(sink.finish().expect("in-memory sink")).expect("utf8");
    let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 1000, "expected a rich timeline");
    let count = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .count()
    };
    assert_eq!(count("B"), count("E"), "unbalanced duration slices");
    assert_eq!(count("b"), count("e"), "unbalanced async slices");
}

/// Checks the lifecycle invariants of one recorded stream.
fn assert_stream_invariants(events: &[(SimTime, SimEvent)]) {
    // Global timestamps are non-decreasing; per-lane monotonicity
    // follows, but group lanes anyway to check lifecycle protocols.
    let mut last = SimTime::ZERO;
    let mut lanes: BTreeMap<Lane, Vec<(SimTime, &SimEvent)>> = BTreeMap::new();
    for (at, event) in events {
        assert!(*at >= last, "timestamps went backwards at {event:?}");
        last = *at;
        lanes.entry(event.lane()).or_default().push((*at, event));
    }
    for (lane, stream) in &lanes {
        let count = |pred: &dyn Fn(&SimEvent) -> bool| -> usize {
            stream.iter().filter(|(_, e)| pred(e)).count()
        };
        match lane {
            Lane::Job(_) => {
                let started = count(&|e| matches!(e, SimEvent::JobStarted { .. }));
                let finished = count(&|e| matches!(e, SimEvent::JobFinished { .. }));
                assert_eq!((started, finished), (1, 1), "{lane:?}: start/finish pair");
            }
            Lane::Map(..) => assert_map_lane_invariants(lane, stream),
            Lane::Reduce(..) => {
                let launched = count(&|e| matches!(e, SimEvent::ReduceLaunched { .. }));
                let done = count(&|e| matches!(e, SimEvent::ReduceDone { .. }));
                assert_eq!((launched, done), (1, 1), "{lane:?}: launch/done pair");
            }
            Lane::Flow(_) => {
                assert!(
                    matches!(stream.first(), Some((_, SimEvent::FlowStarted { .. }))),
                    "{lane:?}: must open with FlowStarted"
                );
                assert!(
                    matches!(stream.last(), Some((_, SimEvent::FlowFinished { .. }))),
                    "{lane:?}: must close with FlowFinished"
                );
                let started = count(&|e| matches!(e, SimEvent::FlowStarted { .. }));
                let finished = count(&|e| matches!(e, SimEvent::FlowFinished { .. }));
                assert_eq!((started, finished), (1, 1), "{lane:?}: start/finish pair");
            }
            Lane::Node(_) | Lane::Repair(_) => {}
        }
    }
}

/// Map-attempt lanes: exactly one launch, exactly one terminal (done
/// xor cancelled), and degraded phases non-overlapping, in fetch →
/// decode → process order, contiguous through the attempt's lifetime.
fn assert_map_lane_invariants(lane: &Lane, stream: &[(SimTime, &SimEvent)]) {
    let launches: Vec<SimTime> = stream
        .iter()
        .filter(|(_, e)| matches!(e, SimEvent::MapLaunched { .. }))
        .map(|(at, _)| *at)
        .collect();
    assert_eq!(launches.len(), 1, "{lane:?}: exactly one launch");
    let done: Vec<SimTime> = stream
        .iter()
        .filter(|(_, e)| matches!(e, SimEvent::MapDone { .. }))
        .map(|(at, _)| *at)
        .collect();
    let cancelled: Vec<SimTime> = stream
        .iter()
        .filter(|(_, e)| matches!(e, SimEvent::MapCancelled { .. }))
        .map(|(at, _)| *at)
        .collect();
    assert_eq!(
        done.len() + cancelled.len(),
        1,
        "{lane:?}: exactly one terminal event"
    );
    let terminal = done.first().or(cancelled.first()).copied().unwrap();

    // Phase protocol: begins and ends alternate, each end matches the
    // open phase, phases never repeat and appear in execution order,
    // and consecutive phases are contiguous in time.
    let mut open: Option<(DegradedPhase, SimTime)> = None;
    let mut spans: Vec<(DegradedPhase, SimTime, SimTime)> = Vec::new();
    for (at, event) in stream {
        match event {
            SimEvent::PhaseBegin { phase, .. } => {
                assert!(
                    open.is_none(),
                    "{lane:?}: phase {phase:?} begins inside another phase"
                );
                if let Some(&(prev, _, prev_end)) = spans.last() {
                    assert!(prev < *phase, "{lane:?}: phase order violated");
                    assert_eq!(
                        prev_end, *at,
                        "{lane:?}: gap between {prev:?} and {phase:?}"
                    );
                }
                open = Some((*phase, *at));
            }
            SimEvent::PhaseEnd { phase, .. } => {
                let (open_phase, begin) = open
                    .take()
                    .unwrap_or_else(|| panic!("{lane:?}: {phase:?} ends without beginning"));
                assert_eq!(open_phase, *phase, "{lane:?}: mismatched phase end");
                assert!(begin <= *at, "{lane:?}: negative phase span");
                spans.push((*phase, begin, *at));
            }
            _ => {}
        }
    }
    assert!(open.is_none(), "{lane:?}: phase left open past terminal");
    if let Some(&(_, _, last_end)) = spans.last() {
        assert_eq!(
            last_end, terminal,
            "{lane:?}: final phase must end at the terminal event"
        );
        assert_eq!(spans[0].1, launches[0], "{lane:?}: fetch starts at launch");
        if !done.is_empty() {
            // A completed degraded attempt runs all three phases.
            let kinds: Vec<DegradedPhase> = spans.iter().map(|&(p, _, _)| p).collect();
            assert_eq!(
                kinds,
                vec![
                    DegradedPhase::FetchK,
                    DegradedPhase::Decode,
                    DegradedPhase::Process
                ],
                "{lane:?}: completed degraded attempt missing phases"
            );
        }
    }
}

#[test]
fn paper_preset_stream_obeys_invariants() {
    let exp = presets::simulation_default();
    for policy in POLICIES {
        let (result, events) = trace(&exp, policy, 1);
        assert_stream_invariants(&events);
        let map_dones = events
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::MapDone { .. }))
            .count();
        let map_records = result
            .tasks
            .iter()
            .filter(|t| t.map_locality().is_some())
            .count();
        assert_eq!(
            map_dones,
            map_records,
            "{}: one MapDone per map record",
            policy.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized seeds and policies on the small preset: every
    /// recorded stream obeys the lane lifecycle, phase-ordering and
    /// phase-contiguity invariants.
    #[test]
    fn recorded_streams_obey_invariants(seed in 0u64..500, policy_idx in 0usize..3) {
        let exp = presets::small_default();
        let (result, events) = trace(&exp, POLICIES[policy_idx], seed);
        assert_stream_invariants(&events);
        let done = events
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::MapDone { .. }))
            .count();
        prop_assert_eq!(
            done,
            result.tasks.iter().filter(|t| t.map_locality().is_some()).count()
        );
    }

    /// Any unicode string survives a `\uXXXX`-escaped JSON round trip:
    /// escape every char (astral code points as surrogate pairs), parse
    /// with `obs::json`, and compare.
    #[test]
    fn json_unicode_escape_round_trips(s in "\\PC*") {
        use dfs::obs::json::Json;
        let mut encoded = String::from('"');
        for ch in s.chars() {
            let mut units = [0u16; 2];
            for unit in ch.encode_utf16(&mut units) {
                encoded.push_str(&format!("\\u{unit:04x}"));
            }
        }
        encoded.push('"');
        let parsed = Json::parse(&encoded).unwrap();
        prop_assert_eq!(parsed, Json::String(s));
    }
}
