//! Redundant degraded reads end to end: cancel-on-quorum semantics,
//! lifecycle balance under cancellation, determinism, the straggler
//! tail cut that motivates the policy, and the build-time fetch-count
//! ceiling.

use std::collections::BTreeMap;

use dfs::ecstore::FetchPolicy;
use dfs::experiment::{Experiment, Policy};
use dfs::obs::event::SimEvent;
use dfs::obs::sink::VecSink;
use dfs::presets;
use dfs::simkit::time::SimTime;
use proptest::prelude::*;

fn trace(exp: &Experiment, policy: Policy, seed: u64) -> Vec<(SimTime, SimEvent)> {
    let mut sink = VecSink::new();
    exp.run_traced(policy, seed, &mut sink).expect("traced run");
    sink.events
}

/// The cancel-on-quorum contract, checked against a full event stream:
/// every cancelled fetch is a real in-flight flow that is torn down
/// (`FlowFinished { cancelled: true }`), and no attempt cancels more
/// flows than the redundant extras it issued.
fn assert_quorum_cancel_semantics(events: &[(SimTime, SimEvent)]) {
    let mut started = BTreeMap::new();
    let mut finished = BTreeMap::new();
    let mut extras_issued = 0u64;
    let mut cancel_wins = Vec::new();
    for (_, ev) in events {
        match ev {
            SimEvent::FlowStarted { flow, .. } => {
                started.insert(*flow, ());
            }
            SimEvent::FlowFinished { flow, cancelled } => {
                finished.insert(*flow, *cancelled);
            }
            SimEvent::RedundantFetchIssued { extra, .. } => extras_issued += u64::from(*extra),
            SimEvent::FetchCancelled { flow, .. } => cancel_wins.push(*flow),
            _ => {}
        }
    }
    for flow in &cancel_wins {
        assert!(
            started.contains_key(flow),
            "cancelled flow {flow} never started"
        );
        assert_eq!(
            finished.get(flow),
            Some(&true),
            "cancelled flow {flow} must finish as cancelled"
        );
    }
    assert!(
        (cancel_wins.len() as u64) <= extras_issued,
        "{} quorum cancels but only {extras_issued} redundant extras issued — \
         a needed fetch was cancelled",
        cancel_wins.len()
    );
    // Flow lifecycles stay balanced even with mid-transfer teardown.
    assert_eq!(
        started.len(),
        finished.len(),
        "every started flow must finish"
    );
}

#[test]
fn redundant_fetch_cancels_at_quorum_on_stragglers() {
    let exp = presets::straggler_default(FetchPolicy::Redundant { extra: 2 });
    let events = trace(&exp, Policy::EnhancedDegradedFirst, 1);
    let issued = events
        .iter()
        .filter(|(_, e)| matches!(e, SimEvent::RedundantFetchIssued { .. }))
        .count();
    let cancelled = events
        .iter()
        .filter(|(_, e)| matches!(e, SimEvent::FetchCancelled { .. }))
        .count();
    assert!(issued > 0, "straggler preset must issue redundant fetches");
    assert!(cancelled > 0, "some extras must lose the race and cancel");
    assert_quorum_cancel_semantics(&events);
}

#[test]
fn exact_fetch_never_emits_redundant_events() {
    let exp = presets::straggler_default(FetchPolicy::Exact);
    let events = trace(&exp, Policy::EnhancedDegradedFirst, 1);
    assert!(!events.iter().any(|(_, e)| matches!(
        e,
        SimEvent::RedundantFetchIssued { .. } | SimEvent::FetchCancelled { .. }
    )));
}

#[test]
fn map_lifecycles_balance_under_redundant_fetch() {
    let exp = presets::straggler_default(FetchPolicy::Redundant { extra: 2 });
    let events = trace(&exp, Policy::EnhancedDegradedFirst, 2);
    let count = |pred: fn(&SimEvent) -> bool| events.iter().filter(|(_, e)| pred(e)).count();
    let launched = count(|e| matches!(e, SimEvent::MapLaunched { .. }));
    let done = count(|e| matches!(e, SimEvent::MapDone { .. }));
    let killed = count(|e| matches!(e, SimEvent::MapCancelled { .. }));
    assert_eq!(launched, done + killed, "map attempts must all resolve");
}

#[test]
fn traced_equals_untraced_under_redundant_fetch() {
    let exp = presets::straggler_default(FetchPolicy::Redundant { extra: 2 });
    let mut sink = VecSink::new();
    let traced = exp
        .run_traced(Policy::EnhancedDegradedFirst, 3, &mut sink)
        .expect("traced");
    let untraced = exp.run(Policy::EnhancedDegradedFirst, 3).expect("untraced");
    assert_eq!(traced, untraced, "tracing must not perturb the simulation");
}

#[test]
fn redundant_fetch_reruns_bit_identically() {
    let exp = presets::straggler_default(FetchPolicy::Redundant { extra: 2 });
    for policy in [Policy::LocalityFirst, Policy::EnhancedDegradedFirst] {
        let a = exp.run(policy, 11).expect("a");
        let b = exp.run(policy, 11).expect("b");
        assert_eq!(a, b, "{} replay diverged", policy.name());
    }
}

/// The headline claim: on a heterogeneous cluster, racing two extra
/// sources and cancelling at the decode quorum cuts the degraded-read
/// tail. Pooled over seeds so one lucky straggler draw can't pass or
/// fail the test.
#[test]
fn redundant_fetch_cuts_the_straggler_tail() {
    let pooled = |fetch: FetchPolicy| {
        let exp = presets::straggler_default(fetch);
        let mut reads = Vec::new();
        for seed in 1..=6 {
            let run = exp.run(Policy::EnhancedDegradedFirst, seed).expect("run");
            reads.extend(run.degraded_read_secs());
        }
        reads.sort_unstable_by(f64::total_cmp);
        reads
    };
    let exact = pooled(FetchPolicy::Exact);
    let redundant = pooled(FetchPolicy::Redundant { extra: 2 });
    assert_eq!(exact.len(), redundant.len(), "same degraded work");
    let p99 = |reads: &[f64]| reads[(reads.len() * 99).div_ceil(100).saturating_sub(1)];
    assert!(
        p99(&redundant) < p99(&exact),
        "redundant p99 {:.1} s should beat exact p99 {:.1} s on stragglers",
        p99(&redundant),
        p99(&exact)
    );
}

/// Requesting more fetch sources than any degraded stripe can have
/// survivors is a configuration error caught at build, not a panic (or
/// a silent clamp) at the first degraded read.
#[test]
fn fetch_count_beyond_survivor_ceiling_fails_at_build() {
    let mut exp = presets::small_default();
    // (8,6): a degraded stripe keeps at most n - 1 = 7 live blocks.
    exp.config.degraded_fetch_blocks = Some(8);
    let err = exp
        .run(Policy::EnhancedDegradedFirst, 1)
        .expect_err("build must reject an unsatisfiable fetch count");
    let msg = err.to_string();
    assert!(
        msg.contains("survivor") && msg.contains("ceiling"),
        "unexpected error: {msg}"
    );
    // One below the ceiling is legal and runs.
    exp.config.degraded_fetch_blocks = Some(7);
    exp.run(Policy::EnhancedDegradedFirst, 1)
        .expect("n - 1 fetches is satisfiable");
}

/// Satellite to the quorum-cancel work: a node dying mid-run while its
/// blocks are being fetched redundantly must not double-count the
/// affected attempts (dead-source flows are pruned when the quorum is
/// still satisfiable; the attempt is killed and requeued only when it
/// is not). Double-counting in either direction would unbalance the
/// attempt ledger or complete a task twice.
#[test]
fn mid_run_node_death_during_redundant_fetch_stays_balanced() {
    use dfs::cluster::FailureTimeline;
    use dfs::experiment::FailureSpec;

    let mut exp = presets::straggler_default(FetchPolicy::Redundant { extra: 2 });
    // Keep the t=0 failure (so degraded redundant fetches are plentiful)
    // and kill a second node mid-run, while fetches are in flight.
    let second = exp.topo.node(9);
    exp.failure = FailureSpec::RandomSingleNode;
    exp.timeline = FailureTimeline::new().fail_node_at(second, SimTime::from_secs(60));

    let mut sink = VecSink::new();
    let result = exp
        .run_traced(Policy::EnhancedDegradedFirst, 4, &mut sink)
        .expect("churned redundant run");
    assert_eq!(result.tasks.len(), 240, "every task completes exactly once");
    assert!(result.makespan.as_secs_f64() > 60.0, "failure was mid-run");

    let events = sink.events;
    assert_quorum_cancel_semantics(&events);
    let count = |pred: fn(&SimEvent) -> bool| events.iter().filter(|(_, e)| pred(e)).count();
    let launched = count(|e| matches!(e, SimEvent::MapLaunched { .. }));
    let done = count(|e| matches!(e, SimEvent::MapDone { .. }));
    let killed = count(|e| matches!(e, SimEvent::MapCancelled { .. }));
    assert_eq!(launched, done + killed, "attempt ledger must balance");

    // At least one redundant attempt straddles the failure instant and
    // still completes without being cancelled — the prune path, not a
    // kill-and-requeue.
    let fail_at = SimTime::from_secs(60);
    let mut straddlers = 0;
    for (at, ev) in &events {
        if let SimEvent::RedundantFetchIssued {
            job,
            task,
            speculative,
            ..
        } = ev
        {
            if *at >= fail_at {
                continue;
            }
            let finished_after = events.iter().any(|(t, e)| {
                matches!(e, SimEvent::MapDone { job: j, task: k, speculative: s, .. }
                         if j == job && k == task && s == speculative && *t > fail_at)
            });
            let never_killed = !events.iter().any(|(_, e)| {
                matches!(e, SimEvent::MapCancelled { job: j, task: k, speculative: s, .. }
                         if j == job && k == task && s == speculative)
            });
            if finished_after && never_killed {
                straddlers += 1;
            }
        }
    }
    assert!(
        straddlers > 0,
        "no redundant attempt survived the mid-run failure — prune path untested"
    );

    let rerun = exp.run(Policy::EnhancedDegradedFirst, 4).expect("rerun");
    assert_eq!(result, rerun, "churn + redundancy must stay deterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cancel-on-quorum holds for any redundancy level and seed, and
    /// the run stays a pure function of its configuration.
    #[test]
    fn quorum_cancel_semantics_hold_for_any_redundancy(
        extra in 1u32..=3,
        seed in 1u64..=50,
    ) {
        let exp = presets::straggler_default(FetchPolicy::Redundant { extra: extra as usize });
        let events = trace(&exp, Policy::EnhancedDegradedFirst, seed);
        assert_quorum_cancel_semantics(&events);
        let a = exp.run(Policy::EnhancedDegradedFirst, seed).expect("a");
        let b = exp.run(Policy::EnhancedDegradedFirst, seed).expect("b");
        prop_assert_eq!(a, b);
    }
}
