//! Cross-crate integration: a single failure-mode job through the whole
//! stack (placement → engine → scheduler → metrics) under all three
//! policies.

use dfs::experiment::Policy;
use dfs::mapreduce::metrics::TaskDetail;
use dfs::mapreduce::MapLocality;
use dfs::presets;

const POLICIES: [Policy; 3] = [
    Policy::LocalityFirst,
    Policy::BasicDegradedFirst,
    Policy::EnhancedDegradedFirst,
];

#[test]
fn every_policy_processes_every_block_exactly_once() {
    let exp = presets::small_default();
    for policy in POLICIES {
        let result = exp.run(policy, 1).expect("run");
        let mut blocks: Vec<_> = result
            .tasks
            .iter()
            .filter_map(|t| match t.detail {
                TaskDetail::Map { block, .. } => Some(block),
                TaskDetail::Reduce { .. } => None,
            })
            .collect();
        assert_eq!(blocks.len(), exp.num_blocks, "{}", policy.name());
        blocks.sort();
        blocks.dedup();
        assert_eq!(
            blocks.len(),
            exp.num_blocks,
            "{} duplicated a block",
            policy.name()
        );
    }
}

#[test]
fn degraded_task_count_equals_lost_blocks() {
    let exp = presets::small_default();
    for seed in 0..4 {
        let state = exp.cluster_state_for_seed(seed);
        for policy in POLICIES {
            let result = exp.run(policy, seed).expect("run");
            // Recompute lost natives with the same placement the run used:
            // every degraded map task's block must have a dead holder.
            let degraded = result.map_count(MapLocality::Degraded);
            assert!(degraded > 0, "seed {seed} should lose blocks");
            assert_eq!(
                result
                    .tasks
                    .iter()
                    .filter(|t| t.map_locality() == Some(MapLocality::Degraded))
                    .count(),
                degraded
            );
        }
        assert_eq!(state.failed_nodes().len(), 1);
    }
}

#[test]
fn task_timings_are_ordered() {
    let exp = presets::small_default();
    for policy in POLICIES {
        let result = exp.run(policy, 2).expect("run");
        for t in &result.tasks {
            assert!(t.assigned_at <= t.input_ready_at, "{}", policy.name());
            assert!(t.input_ready_at <= t.completed_at, "{}", policy.name());
        }
        // Job runtime spans its tasks.
        let job = &result.jobs[0];
        let first = result.tasks.iter().map(|t| t.assigned_at).min().unwrap();
        let last = result.tasks.iter().map(|t| t.completed_at).max().unwrap();
        assert_eq!(job.started_at, first);
        assert_eq!(job.finished_at, last);
    }
}

#[test]
fn degraded_first_improves_runtime_and_read_time() {
    let exp = presets::small_default();
    let mut lf_wins = 0;
    let seeds = 5;
    for seed in 0..seeds {
        let lf = exp.run(Policy::LocalityFirst, seed).expect("LF");
        let edf = exp.run(Policy::EnhancedDegradedFirst, seed).expect("EDF");
        let lf_rt = lf.jobs[0].runtime().as_secs_f64();
        let edf_rt = edf.jobs[0].runtime().as_secs_f64();
        if edf_rt < lf_rt {
            lf_wins += 1;
        }
        // Degraded read times must drop substantially (paper Fig. 8(b):
        // ~85% on average).
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&edf.degraded_read_secs()) < mean(&lf.degraded_read_secs()),
            "seed {seed}: EDF reads not faster"
        );
    }
    assert!(
        lf_wins >= seeds - 1,
        "EDF beat LF in only {lf_wins}/{seeds} seeds"
    );
}

#[test]
fn normal_mode_runs_have_no_degraded_tasks() {
    let exp = presets::small_default();
    let result = exp.run_normal_mode(3).expect("normal");
    assert_eq!(result.map_count(MapLocality::Degraded), 0);
    assert_eq!(result.tasks.len(), exp.num_blocks);
}
