//! Real-bytes integration: corpus → erasure-coded grid → actual
//! WordCount/Grep/LineCount with degraded reads through the RS decoder.

use dfs::cluster::{NodeId, Topology};
use dfs::erasure::CodeParams;
use dfs::textlab::{run_job, CorpusBuilder, Grep, LineCount, MiniGrid, WordCount};

fn make(text: &[u8], seed: u64) -> MiniGrid {
    let topo = Topology::homogeneous(3, 4, 4, 1);
    MiniGrid::new(topo, CodeParams::new(12, 10).unwrap(), 4096, text, seed).unwrap()
}

#[test]
fn outputs_identical_across_all_failure_counts() {
    let text = CorpusBuilder::new(88).lines(5000).build();
    let baseline = run_job(&mut make(&text, 1), &WordCount).unwrap();
    assert_eq!(baseline.stats.degraded_reads, 0);

    // (12,10) tolerates two failures.
    for kill in [vec![NodeId(0)], vec![NodeId(0), NodeId(5)]] {
        let mut grid = make(&text, 1);
        for &n in &kill {
            grid.fail_node(n);
        }
        let out = run_job(&mut grid, &WordCount).unwrap();
        assert_eq!(out.results, baseline.results, "killed {kill:?}");
        assert!(out.stats.degraded_reads > 0, "killed {kill:?}");
    }
}

#[test]
fn wordcount_total_equals_corpus_word_count() {
    let text = CorpusBuilder::new(3).lines(2000).build();
    let oracle_words = String::from_utf8(text.clone())
        .unwrap()
        .split_whitespace()
        .count() as u64;
    let mut grid = make(&text, 2);
    grid.fail_node(NodeId(7));
    let out = run_job(&mut grid, &WordCount).unwrap();
    assert_eq!(out.total(), oracle_words);
}

#[test]
fn linecount_total_equals_corpus_line_count() {
    let lines = 3000;
    let text = CorpusBuilder::new(4).lines(lines).build();
    let mut grid = make(&text, 3);
    grid.fail_node(NodeId(2));
    let out = run_job(&mut grid, &LineCount).unwrap();
    assert_eq!(out.total(), lines as u64);
}

#[test]
fn grep_matches_oracle_under_failure() {
    let text = CorpusBuilder::new(5).lines(4000).build();
    let needle = "whale";
    let oracle: u64 = String::from_utf8(text.clone())
        .unwrap()
        .lines()
        .filter(|l| l.contains(needle))
        .count() as u64;
    assert!(oracle > 0, "corpus should contain the needle");
    let mut grid = make(&text, 4);
    grid.fail_node(NodeId(9));
    let out = run_job(&mut grid, &Grep::new(needle)).unwrap();
    assert_eq!(out.total(), oracle);
}

#[test]
fn degraded_read_traffic_is_k_blocks_per_loss() {
    let text = CorpusBuilder::new(6).lines(5000).build();
    let mut grid = make(&text, 5);
    grid.fail_node(NodeId(1));
    let out = run_job(&mut grid, &LineCount).unwrap();
    let k = 10;
    // Each degraded read fetches at most k shards over the network (the
    // reader may hold one itself).
    assert!(out.stats.blocks_transferred <= out.stats.degraded_reads * k);
    assert!(out.stats.blocks_transferred >= out.stats.degraded_reads * (k - 1));
    assert!(out.stats.cross_rack_transfers <= out.stats.blocks_transferred);
}

#[test]
fn whole_file_reconstruction_is_bit_identical() {
    let text = CorpusBuilder::new(7).lines(2500).build();
    let mut grid = make(&text, 6);
    grid.fail_node(NodeId(3));
    grid.fail_node(NodeId(10));
    assert_eq!(grid.read_file().unwrap(), text);
}
