//! Offline stand-in for `criterion`: enough of the API to compile and
//! run the workspace's `harness = false` benchmarks. Each benchmark is
//! warmed up once, then timed over `sample_size` iterations; the mean
//! ns/iter (and derived throughput, when declared) is printed. There is
//! no statistical analysis, plotting, or baseline comparison — the
//! repository's `bench_snapshot` binary owns machine-readable numbers.

use std::time::Instant;

/// Opaque hint that stops the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to print throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new<N: std::fmt::Display, P: std::fmt::Display>(name: N, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the iteration count used for each benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n as u64;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by one iteration.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size.max(1),
            mean_ns: 0.0,
        };
        f(&mut b);
        let mut line = format!("{}/{}: {:.0} ns/iter", self.name, id.id, b.mean_ns);
        if b.mean_ns > 0.0 {
            match self.throughput {
                Some(Throughput::Bytes(n)) => {
                    let mbps = n as f64 / b.mean_ns * 1e9 / (1024.0 * 1024.0);
                    line.push_str(&format!(" ({mbps:.1} MiB/s)"));
                }
                Some(Throughput::Elements(n)) => {
                    let eps = n as f64 / b.mean_ns * 1e9;
                    line.push_str(&format!(" ({eps:.0} elem/s)"));
                }
                None => {}
            }
        }
        println!("{line}");
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        self.run(id.into(), f);
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id, |b| f(b, input));
    }

    /// Ends the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
