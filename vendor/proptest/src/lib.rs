//! Offline stand-in for `proptest`: deterministic random property
//! testing with the API subset this workspace uses. Cases are generated
//! from a seed derived from the test name, so every run (and every
//! machine) exercises the same inputs. There is **no shrinking** — a
//! failing property reports its case index and seed so the case can be
//! replayed, rather than a minimized input.

pub mod test_runner {
    /// Pseudo-random source for strategies (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; 64 keeps offline CI fast while
            // still covering each property from many angles.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (message produced by `prop_assert!*`).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives one property over its configured number of cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Builds a runner.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Runs `case` once per configured case with a deterministic
        /// per-case RNG; panics (failing the `#[test]`) on the first
        /// reported failure.
        pub fn run_named<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let base = fnv1a(name.as_bytes());
            for i in 0..self.config.cases {
                let seed = base ^ (i as u64).wrapping_mul(0xa076_1d64_78bd_642f);
                let mut rng = TestRng::new(seed);
                if let Err(e) = case(&mut rng) {
                    panic!(
                        "property '{name}' failed at case {i}/{} (seed {seed:#x}): {e}",
                        self.config.cases
                    );
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Transforms values, discarding those mapped to `None`
        /// (bounded retries).
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe generation, for [`BoxedStrategy`].
    pub trait DynStrategy {
        /// The generated value type.
        type Value;
        /// Generates one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn DynStrategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Retry budget for filtering strategies before giving up.
    const FILTER_RETRIES: u32 = 10_000;

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected {FILTER_RETRIES} candidates",
                self.whence
            );
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map '{}' rejected {FILTER_RETRIES} candidates",
                self.whence
            );
        }
    }

    /// Weighted choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof with zero total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            // Sampling the closed upper endpoint has probability ~0 for
            // continuous ranges; uniform over [lo, hi) is equivalent.
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    /// String strategies from a regex-subset pattern (upstream accepts a
    /// full regex; this supports literals, `[...]` classes with ranges,
    /// and the `{m}` / `{m,n}` / `*` / `+` / `?` quantifiers — which is
    /// all the workspace's tests use).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a single (possibly escaped)
            // literal character.
            let class: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i + 1)
                        .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                    let mut set = Vec::new();
                    let body = &chars[i + 1..close];
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            for c in body[j]..=body[j + 2] {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(body[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' => {
                    let c = match chars[i + 1] {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    };
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!class.is_empty(), "empty character class in {pattern:?}");
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i + 1..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| p + i + 1)
                            .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("bad quantifier"),
                                hi.trim().parse().expect("bad quantifier"),
                            ),
                            None => {
                                let n: usize = body.trim().parse().expect("bad quantifier");
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one value covering the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// An inclusive size interval for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // As upstream: duplicates shrink the achieved size, but we
            // retry generously before settling for fewer elements.
            for _ in 0..want.saturating_mul(10).max(16) {
                if set.len() >= want {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// A `BTreeSet` of values from `element`, targeting a size in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Upstream generates `Some` three times out of four.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option<T>` values: `None` a quarter of the time, otherwise
    /// `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Declares property tests. Accepts an optional leading
/// `#![proptest_config(...)]` followed by `#[test] fn name(binding in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_named(stringify!($name), |prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                    let body = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)*), l
        );
    }};
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

pub mod prelude {
    //! Everything a `proptest!` test module needs.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::generate(&(1u8..=255), &mut rng);
            assert!(w >= 1);
            let f = Strategy::generate(&(1e6f64..1e10), &mut rng);
            assert!((1e6..1e10).contains(&f));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0u64..100, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let s = Strategy::generate(&crate::collection::btree_set(0usize..50, 1..=4), &mut rng);
            assert!(s.len() <= 4);
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let mut rng = TestRng::new(3);
        let strat = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let ones = (0..1000)
            .filter(|_| Strategy::generate(&strat, &mut rng) == 1)
            .count();
        assert!(ones > 800, "weight-9 arm picked only {ones}/1000 times");
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0u32..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(u8::from(b) & !1, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_form_works(x in proptest::option::of(0u8..3)) {
            if let Some(v) = x {
                prop_assert!(v < 3);
            }
        }
    }

    use crate as proptest;

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        // No #[test] attribute on the inner fn: it is invoked directly
        // (a test item nested in a fn body would be unnameable to the
        // harness and trips the `unnameable_test_items` lint).
        proptest! {
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
