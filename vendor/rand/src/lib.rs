//! Offline stand-in for the `rand` crate exposing the subset this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `RngCore`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. It is fully
//! deterministic per seed but produces a *different stream* than
//! upstream `rand`'s ChaCha12-based `StdRng`; simulation results remain
//! a pure function of the seed, which is all the workspace relies on.

/// A source of raw random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value sampled uniformly from its full domain (`[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by rejection sampling (unbiased).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods; blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A value sampled from the type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value sampled uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`; a different but equally deterministic
    /// stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
