//! Offline stand-in for `serde`: the `Serialize` / `Deserialize` traits
//! plus no-op derive macros of the same names. Nothing in this
//! workspace serializes at runtime; the traits exist so that manual
//! impls and trait bounds keep compiling (see vendor/README.md).

pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    use std::fmt::Display;

    /// Errors produced while serializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data-format serializer (minimal surface).
    pub trait Serializer: Sized {
        /// Output produced on success.
        type Ok;
        /// Error type.
        type Error: Error;
    }

    /// A serializable value.
    pub trait Serialize {
        /// Serializes `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }
}

pub mod de {
    use std::fmt::Display;

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data-format deserializer (minimal surface).
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;
    }

    /// A deserializable value.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes a value from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }
}

// Trait re-exports live in the type namespace, the derive re-exports
// above in the macro namespace; `use serde::{Serialize, Deserialize}`
// pulls in both, exactly as with the real serde.
pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
