//! Offline stand-in for `serde_derive`: the derive macros parse nothing
//! and expand to nothing. No code in this workspace serializes at
//! runtime — the derives on domain types are declarations of intent
//! that become real once the genuine serde is restored (see
//! vendor/README.md).

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and inert `#[serde(...)]` field
/// attributes) and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and inert `#[serde(...)]` field
/// attributes) and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
